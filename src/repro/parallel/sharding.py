"""Shard-coordinator transport: planning, worker runners, byte accounting.

The sharded DPar2 solver (:mod:`repro.decomposition.sharded`) splits the K
slices of an irregular tensor across N workers and exchanges only small
Gram statistics each sweep.  This module owns the *mechanics* of that —
deliberately free of any decomposition math, so the same machinery can
carry other shardable solvers later:

* :func:`plan_shards` — two-level Algorithm-4 balancing.  Slices are first
  grouped into a fixed set of reduction *cells* by
  :func:`~repro.parallel.partition.greedy_partition` over row counts, then
  whole cells are balanced across shards the same way.  Cells are the unit
  of floating-point accumulation downstream, and their membership depends
  only on the weights and the cell count — never on the shard count —
  which is what makes sharded results shard-count-invariant.
* :class:`SerialShardRunner` / :class:`ThreadShardRunner` /
  :class:`ProcessShardRunner` — the three transports, one per
  ``shard_backend`` name.  All expose the same ``start`` / ``call`` /
  ``close`` surface and produce byte-identical results; the process runner
  ships its init payload through the shared-memory / memmap / CSR
  machinery of :mod:`repro.parallel.shm` so bulk slice data never transits
  pickle.
* byte accounting — every runner counts the ndarray bytes broadcast to
  and returned from shards (:func:`payload_nbytes`), so the coordinator
  can report the measured allreduce payload per sweep.
"""

from __future__ import annotations

import os
import pickle
import shutil
import sys
import tempfile
import time
import traceback
import zlib
from dataclasses import dataclass
from multiprocessing import Pipe, Process, connection, resource_tracker
from typing import Callable, Sequence

import numpy as np

from repro.obs.metrics import get_registry
from repro.parallel.partition import greedy_partition, partition_imbalance
from repro.parallel.shm import ArrayShipment, AttachedArrays
from repro.util import faults

__all__ = [
    "ProcessShardRunner",
    "SerialShardRunner",
    "ShardPlan",
    "ShardWorkerError",
    "ThreadShardRunner",
    "get_shard_runner",
    "payload_nbytes",
    "plan_shards",
]


# --------------------------------------------------------------------- #
# planning
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardPlan:
    """A fixed cell layout and its assignment to shards.

    ``cells[c]`` holds the slice indices of cell ``c`` (sorted ascending);
    ``shard_cells[s]`` the cell ids owned by shard ``s`` (sorted
    ascending).  Cell membership is a function of the weights and the cell
    count only; re-planning the same weights onto a different shard count
    reassigns whole cells but never splits or reorders them.
    """

    cells: tuple[tuple[int, ...], ...]
    shard_cells: tuple[tuple[int, ...], ...]
    imbalance: float
    cell_imbalance: float

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_shards(self) -> int:
        return len(self.shard_cells)

    def shard_slices(self, shard: int) -> list[int]:
        """All slice indices owned by ``shard`` (cell order, then index)."""
        return [k for cell in self.shard_cells[shard] for k in self.cells[cell]]

    def describe(self) -> dict:
        """Diagnostics for :class:`~repro.decomposition.result.Parafac2Result` stats."""
        return {
            "shards": self.n_shards,
            "cells": self.n_cells,
            "cell_sizes": [len(cell) for cell in self.cells],
            "shard_cells": [list(cells) for cells in self.shard_cells],
            "imbalance": self.imbalance,
            "cell_imbalance": self.cell_imbalance,
        }


def plan_shards(
    weights: Sequence[float], n_shards: int, n_cells: int | None = None
) -> ShardPlan:
    """Two-level greedy balancing: slices → cells, cells → shards.

    ``n_cells`` defaults to ``n_shards`` and is clamped to the item count;
    empty cells (possible when ``n_cells`` exceeds the number of nonzero
    groups) are dropped, and ``n_shards`` is clamped to the resulting cell
    count — a shard with no cells would only idle.  The reported
    ``imbalance`` is the slice-weight imbalance of the final shard
    assignment (what actually bounds the parallel sweep time);
    ``cell_imbalance`` measures how evenly the cells themselves came out,
    i.e. how much granularity the second level had to work with.
    """
    weights = [float(w) for w in weights]
    if not weights:
        raise ValueError("cannot plan shards over zero slices")
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if n_cells is None:
        n_cells = n_shards
    if n_cells <= 0:
        raise ValueError(f"n_cells must be positive, got {n_cells}")
    n_cells = min(n_cells, len(weights))

    cells = [
        tuple(sorted(group))
        for group in greedy_partition(weights, n_cells)
        if group
    ]
    cell_weights = [sum(weights[k] for k in cell) for cell in cells]
    n_shards = min(n_shards, len(cells))
    shard_cells = [
        tuple(sorted(group))
        for group in greedy_partition(cell_weights, n_shards)
    ]

    slice_groups = [
        [k for cell in cells_of_shard for k in cells[cell]]
        for cells_of_shard in shard_cells
    ]
    return ShardPlan(
        cells=tuple(cells),
        shard_cells=tuple(shard_cells),
        imbalance=partition_imbalance(weights, slice_groups),
        cell_imbalance=partition_imbalance(
            cell_weights, [[c] for c in range(len(cells))]
        ),
    )


# --------------------------------------------------------------------- #
# byte accounting
# --------------------------------------------------------------------- #


def payload_nbytes(obj) -> int:
    """Total ndarray bytes reachable in a message payload.

    Counts only bulk array data — the pickle framing of tuples/dicts and
    scalars is noise next to it, and the point of the measurement is to
    show the per-sweep exchange stays O(R²) per shard regardless of K.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(value) for value in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(value) for value in obj.values())
    return 0


# --------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------- #


class ShardWorkerError(RuntimeError):
    """A shard worker failed unrecoverably: which shard, which call, why.

    ``kind`` is ``"died"`` (process exited / was killed), ``"hang"``
    (per-call deadline exceeded), ``"corrupt"`` (reply failed checksum or
    unpickling), or ``"error"`` (the shard method raised — deterministic,
    so never retried).  ``stderr`` carries the tail of the worker's
    captured stderr, which is where segfault bands and C-library noise
    end up.
    """

    def __init__(
        self,
        shard: int,
        call: str,
        kind: str,
        detail: str = "",
        stderr: str = "",
    ) -> None:
        self.shard = shard
        self.call = call
        self.kind = kind
        self.stderr = stderr
        parts = [f"shard {shard} worker {kind} during {call!r}"]
        if detail:
            parts.append(detail)
        if stderr.strip():
            parts.append(f"--- worker stderr (tail) ---\n{stderr.strip()}")
        super().__init__("\n".join(parts))


class _WorkerFault(Exception):
    """Internal: a transport-level worker failure eligible for respawn."""

    def __init__(self, kind: str, detail: str = "") -> None:
        self.kind = kind
        self.detail = detail
        super().__init__(detail or kind)


_EMPTY_FAULT_STATS = {"worker_restarts": 0, "replayed_calls": 0, "events": []}


class ShardRunner:
    """Common surface of the three shard transports.

    ``factory`` is a picklable module-level callable mapping one init
    payload to a live shard-state object; ``payloads`` holds one payload
    per shard.  :meth:`start` builds every state and returns the per-shard
    results of its ``startup()`` method (shard order); :meth:`call`
    broadcasts one method invocation to every shard and returns the
    results in shard order.  ``bytes_sent`` / ``bytes_received``
    accumulate the ndarray payload of every ``call`` (startup and
    shutdown excluded — they are one-time data shipment, not the per-sweep
    allreduce being measured).
    """

    def __init__(self, factory: Callable, payloads: Sequence) -> None:
        if not payloads:
            raise ValueError("at least one shard payload is required")
        self._factory = factory
        self._payloads = list(payloads)
        self.n_shards = len(self._payloads)
        self.bytes_sent = 0
        self.bytes_received = 0
        self._m_call_seconds = get_registry().histogram(
            "repro_shard_call_seconds",
            "Per-shard latency of one broadcast method call.",
            labels={"backend": getattr(self, "name", "unknown")},
        )

    @property
    def bytes_transferred(self) -> int:
        """Sent + received call bytes, for per-sweep deltas."""
        return self.bytes_sent + self.bytes_received

    def start(self) -> list:
        raise NotImplementedError

    def call(self, method: str, *args) -> list:
        """Broadcast ``method(*args)`` to every shard; results in order."""
        return self.call_each(method, [args] * self.n_shards)

    def call_each(self, method: str, args_per_shard: Sequence[tuple]) -> list:
        """Invoke ``method`` with per-shard arguments; results in order."""
        if len(args_per_shard) != self.n_shards:
            raise ValueError(
                f"need {self.n_shards} argument tuples, got {len(args_per_shard)}"
            )
        self.bytes_sent += sum(payload_nbytes(args) for args in args_per_shard)
        results = self._dispatch(method, list(args_per_shard))
        self.bytes_received += payload_nbytes(results)
        return results

    def _dispatch(self, method: str, args_per_shard: list) -> list:
        raise NotImplementedError

    @property
    def fault_stats(self) -> dict:
        """Recovery counters: worker restarts, replayed calls, fault events."""
        return {key: (list(value) if isinstance(value, list) else value)
                for key, value in _EMPTY_FAULT_STATS.items()}

    def close(self) -> None:
        """Release shard resources (idempotent)."""

    def __enter__(self) -> "ShardRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialShardRunner(ShardRunner):
    """All shards in the calling thread — debugging and overhead baseline."""

    name = "serial"

    def __init__(self, factory: Callable, payloads: Sequence) -> None:
        super().__init__(factory, payloads)
        self._states: list | None = None

    def start(self) -> list:
        self._states = [self._factory(payload) for payload in self._payloads]
        self._payloads = [None] * self.n_shards  # raw data now shard-owned
        return [state.startup() for state in self._states]

    def _dispatch(self, method, args_per_shard):
        out = []
        for state, args in zip(self._states, args_per_shard):
            t0 = time.perf_counter()
            out.append(getattr(state, method)(*args))
            self._m_call_seconds.observe(time.perf_counter() - t0)
        return out

    def close(self) -> None:
        self._states = None


class ThreadShardRunner(ShardRunner):
    """One worker thread per shard; BLAS/LAPACK release the GIL."""

    name = "thread"

    def __init__(self, factory: Callable, payloads: Sequence) -> None:
        super().__init__(factory, payloads)
        self._states: list | None = None
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=self.n_shards)
        return self._pool

    def start(self) -> list:
        pool = self._ensure_pool()
        self._states = list(pool.map(self._factory, self._payloads))
        self._payloads = [None] * self.n_shards
        return list(pool.map(lambda state: state.startup(), self._states))

    def _dispatch(self, method, args_per_shard):
        pool = self._ensure_pool()

        def _timed(pair):
            t0 = time.perf_counter()
            result = getattr(pair[0], method)(*pair[1])
            self._m_call_seconds.observe(time.perf_counter() - t0)
            return result

        return list(pool.map(_timed, zip(self._states, args_per_shard)))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._states = None


def _shard_worker_main(
    conn: connection.Connection,
    factory: Callable,
    packed,
    stderr_path: str | None = None,
    fault_plan=None,
    shard_index: int = 0,
    generation: int = 0,
) -> None:
    """Worker process loop: resolve shipped arrays, answer method calls.

    The init payload's bulk arrays arrive as shm/memmap/CSR refs and are
    resolved into zero-copy views held for the worker's lifetime (the
    parent may unlink the segments once startup is acknowledged — the
    mapping keeps them alive here).  Results travel back as a pickled
    blob plus its CRC-32, so the parent can detect corrupt payloads;
    fd 2 is redirected into ``stderr_path`` so the parent can attach the
    worker's stderr to any failure it reports.  ``fault_plan`` re-scopes
    the (fork-inherited) fault-injection state to this shard and respawn
    generation; injection sites are ``shard.call.<method>`` before each
    method runs and ``shard.reply.<method>`` on the reply blob.
    """
    if stderr_path is not None:
        try:
            fd = os.open(stderr_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            os.dup2(fd, 2)
            os.close(fd)
            sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
        except OSError:  # pragma: no cover - capture is best-effort
            pass
    faults.activate(fault_plan, shard=shard_index, generation=generation)
    holder = AttachedArrays()

    def reply(method: str, value) -> None:
        blob = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        crc = zlib.crc32(blob)
        # Corruption is applied after the checksum — it models damage in
        # transit, which the parent must catch by re-checksumming.
        blob = faults.corrupt_bytes(f"shard.reply.{method}", blob)
        conn.send(("ok", blob, crc))

    try:
        try:
            faults.check("shard.call.startup")
            state = factory(holder.resolve(packed))
            reply("startup", holder.copy_if_shared(state.startup()))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
            return
        while True:
            message = conn.recv()
            if message is None:
                return
            method, args = message
            try:
                faults.check(f"shard.call.{method}")
                result = getattr(state, method)(*args)
            except BaseException:
                conn.send(("err", traceback.format_exc()))
            else:
                reply(method, holder.copy_if_shared(result))
    except EOFError:  # parent went away; nothing left to answer
        pass
    finally:
        holder.release()
        conn.close()


def _default_call_timeout() -> float:
    raw = os.environ.get("REPRO_SHARD_CALL_TIMEOUT")
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return 300.0


class ProcessShardRunner(ShardRunner):
    """One worker process per shard, fed through shared-memory shipment.

    Bulk init data (slices or precomputed factors) moves through
    :class:`~repro.parallel.shm.ArrayShipment`: in-RAM arrays are parked
    in named segments, memmap-backed arrays travel as path descriptors,
    CSR slices as their three component buffers.  Per-call messages are
    small (O(R²) Grams) and go over a duplex pipe via pickle.

    Fault tolerance: every receive polls the pipe on a short heartbeat,
    checking worker liveness and a per-call deadline; replies carry a
    CRC-32 so corrupt payloads are caught.  A dead, hung, or corrupt
    worker is killed and **respawned**: the original init payload is
    re-shipped, startup re-runs (per-cell stage-1 is deterministic given
    the seed), and the full logged call history is replayed — so the
    respawned shard reaches exactly the state it lost and the final
    factors stay bitwise-identical to a no-fault run.  Respawns are
    bounded by ``max_respawns`` per shard; past the budget (or on a
    deterministic in-method exception) a :class:`ShardWorkerError`
    carrying the worker's captured stderr is raised.  Replayed traffic is
    not added to ``bytes_sent`` / ``bytes_received`` — those measure the
    logical allreduce, not recovery overhead (tracked in
    :attr:`fault_stats` instead).

    ``call_timeout=None`` picks the ``REPRO_SHARD_CALL_TIMEOUT``
    environment override or 300 s; pass ``0`` to disable the deadline
    (death detection still applies).
    """

    name = "process"

    def __init__(
        self,
        factory: Callable,
        payloads: Sequence,
        *,
        call_timeout: float | None = None,
        heartbeat_interval: float = 0.25,
        max_respawns: int = 2,
    ) -> None:
        super().__init__(factory, payloads)
        if call_timeout is None:
            call_timeout = _default_call_timeout()
        self._call_timeout = float(call_timeout) if call_timeout and call_timeout > 0 else None
        self._heartbeat_interval = max(0.01, float(heartbeat_interval))
        self._max_respawns = int(max_respawns)
        self._processes: list[Process | None] = [None] * self.n_shards
        self._conns: list[connection.Connection | None] = [None] * self.n_shards
        self._shipments: list[ArrayShipment | None] = [None] * self.n_shards
        self._stderr_paths: list[str | None] = [None] * self.n_shards
        self._respawns = [0] * self.n_shards
        self._stderr_dir: str | None = None
        self._call_log: list[tuple[str, list[tuple]]] = []
        self._in_flight = False
        self._worker_restarts = 0
        self._replayed_calls = 0
        self._fault_events: list[dict] = []
        registry = get_registry()
        self._m_heartbeat_misses = registry.counter(
            "repro_shard_heartbeat_misses_total",
            "Heartbeat polls that elapsed without a worker reply.",
        )
        self._m_respawns = registry.counter(
            "repro_shard_respawns_total",
            "Shard worker processes respawned after a detected fault.",
        )

    @property
    def fault_stats(self) -> dict:
        """Recovery counters: worker restarts, replayed calls, fault events."""
        return {
            "worker_restarts": self._worker_restarts,
            "replayed_calls": self._replayed_calls,
            "events": [dict(event) for event in self._fault_events],
        }

    # -- lifecycle ----------------------------------------------------- #

    def start(self) -> list:
        # The tracker must exist before forking, for the same reason as
        # ProcessBackend: workers forked earlier would spawn private
        # trackers that fight the parent over segment cleanup.
        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform without tracker
            pass
        self._stderr_dir = tempfile.mkdtemp(prefix="repro-shard-stderr-")
        for index in range(self.n_shards):
            self._spawn(index)
        # Collect startup acks while each shard's segments are still
        # linked — a worker maps them during resolve, so after its ack
        # the parent copy can go (the mapping keeps the memory alive).
        # Payloads are retained for respawn-and-replay.
        out = []
        for index in range(self.n_shards):
            try:
                value = self._recv(index, "startup")
                self._cleanup_shipment(index)
            except _WorkerFault as fault:
                value = self._restore(index, fault, "startup")
            out.append(value)
        return out

    def _spawn(self, index: int) -> None:
        generation = self._respawns[index]
        stderr_path = os.path.join(
            self._stderr_dir, f"shard{index}-gen{generation}.log"
        )
        parent_conn, child_conn = Pipe(duplex=True)
        shipment = ArrayShipment()
        try:
            packed = shipment.pack(self._payloads[index])
            process = Process(
                target=_shard_worker_main,
                args=(
                    child_conn,
                    self._factory,
                    packed,
                    stderr_path,
                    faults.active_plan(),
                    index,
                    generation,
                ),
                daemon=True,
            )
            process.start()
        except BaseException:
            shipment.cleanup()
            parent_conn.close()
            raise
        finally:
            child_conn.close()
        self._processes[index] = process
        self._conns[index] = parent_conn
        self._shipments[index] = shipment
        self._stderr_paths[index] = stderr_path

    def _cleanup_shipment(self, index: int) -> None:
        shipment = self._shipments[index]
        if shipment is not None:
            shipment.cleanup()
            self._shipments[index] = None

    # -- receive with heartbeat / deadline ----------------------------- #

    def _recv(self, index: int, call: str):
        conn = self._conns[index]
        process = self._processes[index]
        deadline = (
            time.monotonic() + self._call_timeout if self._call_timeout else None
        )
        while True:
            try:
                ready = conn.poll(self._heartbeat_interval)
            except (OSError, EOFError):
                raise _WorkerFault("died", "pipe closed") from None
            if not ready:
                self._m_heartbeat_misses.inc()
            if ready:
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    raise _WorkerFault("died", "EOF before reply") from None
                break
            if not process.is_alive():
                if conn.poll(0):  # answered, then exited — drain the reply
                    continue
                raise _WorkerFault(
                    "died", f"worker exited with code {process.exitcode}"
                )
            if deadline is not None and time.monotonic() >= deadline:
                raise _WorkerFault(
                    "hang", f"no reply within {self._call_timeout:.1f}s"
                )
        if message[0] == "err":
            raise ShardWorkerError(
                index, call, "error", detail=message[1],
                stderr=self._stderr_tail(index),
            )
        _, blob, crc = message
        if zlib.crc32(blob) != crc:
            raise _WorkerFault("corrupt", "reply failed CRC-32 check")
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise _WorkerFault("corrupt", f"reply unpickle failed: {exc}") from None

    def _send(self, index: int, message) -> None:
        try:
            self._conns[index].send(message)
        except (BrokenPipeError, OSError):
            raise _WorkerFault("died", "pipe closed on send") from None

    # -- respawn and replay -------------------------------------------- #

    def _stderr_tail(self, index: int, limit: int = 2000) -> str:
        path = self._stderr_paths[index]
        if path is None:
            return ""
        try:
            with open(path, "r", errors="replace") as handle:
                return handle.read()[-limit:]
        except OSError:
            return ""

    def _reap(self, index: int) -> None:
        process = self._processes[index]
        if process is not None:
            if process.is_alive():
                process.terminate()
                process.join(timeout=2)
            if process.is_alive():  # pragma: no cover - terminate ignored
                process.kill()
                process.join(timeout=5)
            else:
                process.join(timeout=1)
            try:
                process.close()
            except Exception:  # pragma: no cover - still running
                pass
        conn = self._conns[index]
        if conn is not None:
            conn.close()
        self._processes[index] = None
        self._conns[index] = None
        self._cleanup_shipment(index)

    def _note_failure(self, index: int, fault: _WorkerFault, call: str) -> None:
        stderr = self._stderr_tail(index)
        self._reap(index)
        self._fault_events.append(
            {
                "shard": index,
                "call": call,
                "kind": fault.kind,
                "detail": fault.detail,
                "stderr": stderr[-500:],
            }
        )
        if self._respawns[index] >= self._max_respawns:
            raise ShardWorkerError(
                index, call, fault.kind,
                detail=(
                    f"{fault.detail}; respawn budget exhausted "
                    f"({self._max_respawns} per shard)"
                ),
                stderr=stderr,
            )
        self._respawns[index] += 1
        self._worker_restarts += 1
        self._m_respawns.inc()

    def _completed_log(self) -> list[tuple[str, list[tuple]]]:
        # During a broadcast the current call is already logged (a shard
        # that fails *later* must replay it) but has not completed for
        # the recovering shard — the caller re-issues it after replay.
        return self._call_log[:-1] if self._in_flight else list(self._call_log)

    def _restore(self, index: int, fault: _WorkerFault, call: str):
        """Respawn shard ``index`` and replay its history; return the
        fresh startup value.  Raises :class:`ShardWorkerError` once the
        respawn budget is exhausted."""
        while True:
            self._note_failure(index, fault, call)
            try:
                self._spawn(index)
                startup_value = self._recv(index, "startup")
                self._cleanup_shipment(index)
                for logged_method, logged_args in self._completed_log():
                    self._send(index, (logged_method, logged_args[index]))
                    self._recv(index, logged_method)
                    self._replayed_calls += 1
                return startup_value
            except _WorkerFault as again:
                fault = again

    # -- dispatch ------------------------------------------------------ #

    def _dispatch(self, method, args_per_shard):
        args_per_shard = [tuple(args) for args in args_per_shard]
        self._call_log.append((method, args_per_shard))
        self._in_flight = True
        try:
            pending: list[_WorkerFault | None] = [None] * self.n_shards
            for index, args in enumerate(args_per_shard):
                try:
                    self._send(index, (method, args))
                except _WorkerFault as fault:
                    pending[index] = fault
            return [
                self._collect(index, method, args_per_shard[index], pending[index])
                for index in range(self.n_shards)
            ]
        finally:
            self._in_flight = False

    def _collect(self, index: int, method: str, args: tuple, fault):
        t0 = time.perf_counter()
        while True:
            if fault is None:
                try:
                    result = self._recv(index, method)
                    self._m_call_seconds.observe(time.perf_counter() - t0)
                    return result
                except _WorkerFault as caught:
                    fault = caught
            self._restore(index, fault, method)
            fault = None
            try:
                self._send(index, (method, args))
            except _WorkerFault as caught:
                fault = caught

    def close(self) -> None:
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for index, process in enumerate(self._processes):
            if process is None:
                continue
            process.join(timeout=10)
            if process.is_alive():  # hung or fault-injected worker
                process.terminate()
                process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - terminate ignored
                process.kill()
                process.join(timeout=5)
            try:
                process.close()
            except Exception:  # pragma: no cover - still running
                pass
            self._processes[index] = None
        for index, conn in enumerate(self._conns):
            if conn is not None:
                conn.close()
                self._conns[index] = None
        for index in range(self.n_shards):
            self._cleanup_shipment(index)
        if self._stderr_dir is not None:
            shutil.rmtree(self._stderr_dir, ignore_errors=True)
            self._stderr_dir = None

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


#: Name → runner class, mirroring ``repro.parallel.backends.BACKENDS``.
SHARD_RUNNERS: dict[str, type[ShardRunner]] = {
    SerialShardRunner.name: SerialShardRunner,
    ThreadShardRunner.name: ThreadShardRunner,
    ProcessShardRunner.name: ProcessShardRunner,
}


def get_shard_runner(
    backend: str, factory: Callable, payloads: Sequence, **options
) -> ShardRunner:
    """Construct the named shard transport over one payload per shard.

    ``options`` (``call_timeout``, ``heartbeat_interval``,
    ``max_respawns``) tune the process runner's fault tolerance; the
    in-process runners have no transport to fail, so they ignore them.
    """
    key = backend.strip().lower()
    if key not in SHARD_RUNNERS:
        raise ValueError(
            f"unknown shard backend {backend!r}; "
            f"available: {', '.join(SHARD_RUNNERS)}"
        )
    cls = SHARD_RUNNERS[key]
    if cls is ProcessShardRunner:
        return cls(factory, payloads, **options)
    return cls(factory, payloads)
