"""Careful distribution of work — Algorithm 4 of the paper.

The cost of compressing slice ``Xk`` is proportional to its row count
``Ik``; row counts are wildly skewed for real irregular tensors (Fig. 8).
Algorithm 4 is greedy number partitioning (longest-processing-time first):
sort slices by row count descending, and repeatedly hand the next slice to
the thread with the smallest accumulated load.

The shard coordinator (:mod:`repro.parallel.sharding`) builds on these
primitives, so their edge cases are pinned down precisely: empty groups
when ``n_parts > len(weights)``, all-zero weights spread round-robin
instead of piling onto part 0, and fully deterministic tie-breaking.
"""

from __future__ import annotations

from typing import Sequence


def greedy_partition(weights: Sequence[float], n_parts: int) -> list[list[int]]:
    """Partition item indices into ``n_parts`` load-balanced groups.

    Parameters
    ----------
    weights:
        Per-item costs — for DPar2, the slice row counts ``Ik``.
    n_parts:
        Number of threads ``T``.

    Returns
    -------
    list of lists
        ``parts[t]`` holds the item indices assigned to thread ``t``.
        Every index appears exactly once; empty groups are possible when
        ``n_parts > len(weights)``.  The result is fully deterministic:
        items are processed in (descending weight, ascending index) order
        and load ties break by (fewest items, lowest part index), so
        equal-weight — including all-zero-weight — items spread across
        parts instead of collapsing onto part 0.
    """
    if n_parts <= 0:
        raise ValueError(f"n_parts must be positive, got {n_parts}")
    costs = [float(w) for w in weights]
    if any(c < 0 for c in costs):
        raise ValueError("weights must be non-negative")

    parts: list[list[int]] = [[] for _ in range(n_parts)]
    loads = [0.0] * n_parts
    # Sort descending by weight (Lval/Lind in the paper); ties broken by
    # original index for determinism.
    order = sorted(range(len(costs)), key=lambda idx: (-costs[idx], idx))
    for idx in order:
        # Tie-break equal loads by item count so zero-weight items (which
        # never change the load) still spread across parts.
        target = min(range(n_parts), key=lambda t: (loads[t], len(parts[t]), t))
        parts[target].append(idx)
        loads[target] += costs[idx]
    return parts


def round_robin_partition(n_items: int, n_parts: int) -> list[list[int]]:
    """The naive allocation Algorithm 4 improves upon (ablation baseline)."""
    if n_parts <= 0:
        raise ValueError(f"n_parts must be positive, got {n_parts}")
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    parts: list[list[int]] = [[] for _ in range(n_parts)]
    for idx in range(n_items):
        parts[idx % n_parts].append(idx)
    return parts


def partition_imbalance(weights: Sequence[float], parts: Sequence[Sequence[int]]) -> float:
    """Load imbalance of a partition: ``max load / mean load`` (1.0 = perfect).

    The completion time of the parallel compression stage is the max load, so
    this ratio is exactly the slowdown versus a perfectly balanced split.
    Empty groups are legitimate (``n_parts > len(weights)``) and count
    toward the mean; an empty ``parts`` sequence is rejected because the
    ratio is undefined.
    """
    if len(parts) == 0:
        raise ValueError("parts must contain at least one group")
    costs = [float(w) for w in weights]
    loads = [sum(costs[idx] for idx in group) for group in parts]
    total = sum(loads)
    if total == 0.0:
        return 1.0
    mean = total / len(parts)
    return max(loads) / mean
