"""Careful distribution of work — Algorithm 4 of the paper.

The cost of compressing slice ``Xk`` is proportional to its row count
``Ik``; row counts are wildly skewed for real irregular tensors (Fig. 8).
Algorithm 4 is greedy number partitioning (longest-processing-time first):
sort slices by row count descending, and repeatedly hand the next slice to
the thread with the smallest accumulated load.
"""

from __future__ import annotations

from typing import Sequence


def greedy_partition(weights: Sequence[float], n_parts: int) -> list[list[int]]:
    """Partition item indices into ``n_parts`` load-balanced groups.

    Parameters
    ----------
    weights:
        Per-item costs — for DPar2, the slice row counts ``Ik``.
    n_parts:
        Number of threads ``T``.

    Returns
    -------
    list of lists
        ``parts[t]`` holds the item indices assigned to thread ``t``.
        Every index appears exactly once; empty groups are possible when
        ``n_parts > len(weights)``.
    """
    if n_parts <= 0:
        raise ValueError(f"n_parts must be positive, got {n_parts}")
    costs = [float(w) for w in weights]
    if any(c < 0 for c in costs):
        raise ValueError("weights must be non-negative")

    parts: list[list[int]] = [[] for _ in range(n_parts)]
    loads = [0.0] * n_parts
    # Sort descending by weight (Lval/Lind in the paper); ties broken by
    # original index for determinism.
    order = sorted(range(len(costs)), key=lambda idx: (-costs[idx], idx))
    for idx in order:
        target = min(range(n_parts), key=lambda t: (loads[t], t))
        parts[target].append(idx)
        loads[target] += costs[idx]
    return parts


def round_robin_partition(n_items: int, n_parts: int) -> list[list[int]]:
    """The naive allocation Algorithm 4 improves upon (ablation baseline)."""
    if n_parts <= 0:
        raise ValueError(f"n_parts must be positive, got {n_parts}")
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    parts: list[list[int]] = [[] for _ in range(n_parts)]
    for idx in range(n_items):
        parts[idx % n_parts].append(idx)
    return parts


def partition_imbalance(weights: Sequence[float], parts: Sequence[Sequence[int]]) -> float:
    """Load imbalance of a partition: ``max load / mean load`` (1.0 = perfect).

    The completion time of the parallel compression stage is the max load, so
    this ratio is exactly the slowdown versus a perfectly balanced split.
    """
    costs = [float(w) for w in weights]
    loads = [sum(costs[idx] for idx in group) for group in parts]
    total = sum(loads)
    if total == 0.0:
        return 1.0
    mean = total / len(parts)
    return max(loads) / mean
