"""Multicore substrate: Algorithm 4's greedy work partitioning plus a thin
thread-pool wrapper.

numpy's BLAS kernels release the GIL, so thread-level parallelism across
slices gives genuine speedups for the SVD-heavy compression stage — the same
slice-level parallelism the paper's MATLAB implementation uses.
"""

from repro.parallel.executor import map_partitioned, parallel_map
from repro.parallel.partition import greedy_partition, partition_imbalance

__all__ = [
    "greedy_partition",
    "map_partitioned",
    "parallel_map",
    "partition_imbalance",
]
