"""Multicore substrate: Algorithm 4's greedy work partitioning plus
pluggable execution backends (serial / thread / process + shared memory).

numpy's BLAS kernels release the GIL, so thread-level parallelism across
slices gives genuine speedups for the SVD-heavy compression stage — the same
slice-level parallelism the paper's MATLAB implementation uses.  The process
backend escapes the GIL entirely, shipping slices to workers through
``multiprocessing.shared_memory`` (or as memory-map descriptors when the
tensor is already out-of-core).
"""

from repro.parallel.backends import (
    BACKEND_NAMES,
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.parallel.executor import map_partitioned, parallel_map
from repro.parallel.partition import greedy_partition, partition_imbalance

__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "get_backend",
    "greedy_partition",
    "map_partitioned",
    "parallel_map",
    "partition_imbalance",
]
