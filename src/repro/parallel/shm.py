"""Zero-copy shipping of ndarray payloads to worker processes.

The process backend must move slice matrices to its workers without paying
pickle's serialize/deserialize copy for the bulk data.  Two transports:

* **Shared memory** (:class:`ShmArrayRef`) — an in-RAM array is copied once
  into a :class:`multiprocessing.shared_memory.SharedMemory` segment by the
  parent; workers map the segment and operate on a zero-copy view.
* **Memory map** (:class:`MmapArrayRef`) — an array that is already a
  read-only ``np.memmap`` (e.g. a slice of an out-of-core
  :class:`~repro.tensor.mmap_store.MmapSliceStore` tensor) is shipped as a
  tiny *(path, dtype, shape, offset)* descriptor; workers re-open the map
  themselves and the data never leaves the page cache.

Only the arrays are intercepted: the surrounding structure (tuples, lists,
dicts, RNGs, …) still travels by pickle, which is cheap because it is small.
:class:`~repro.sparse.csr.CsrMatrix` slices decompose into their three
component buffers (:class:`CsrRef`), so sparse slices ride the same
zero-copy transports instead of whole-object pickle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.sparse.csr import CsrMatrix


@dataclass(frozen=True)
class ShmArrayRef:
    """Descriptor of an array parked in a named shared-memory segment."""

    name: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class MmapArrayRef:
    """Descriptor of an array backed by a file on disk (``.npy`` payload)."""

    path: str
    shape: tuple
    dtype: str
    offset: int


@dataclass(frozen=True)
class CsrRef:
    """Descriptor of a CSR slice shipped as its three component buffers.

    Each component is itself an array ref (or a tiny inline array), so a
    CSR slice travels as ``O(nnz)`` shared-memory/memmap bytes instead of a
    whole-object pickle — and store-backed components (memmaps) ship as
    path descriptors without transiting the parent at all.
    """

    shape: tuple
    indptr: object
    indices: object
    data: object


def _is_shippable_memmap(array: np.ndarray) -> bool:
    """True when ``array`` is a whole, C-contiguous file-backed memmap.

    Views carved out of a memmap keep the parent's ``offset`` attribute, so
    only arrays that directly wrap the file (``base`` is not another ndarray)
    can be reconstructed from the descriptor alone.
    """
    return (
        isinstance(array, np.memmap)
        and getattr(array, "filename", None) is not None
        and not isinstance(array.base, np.ndarray)
        and array.flags["C_CONTIGUOUS"]
    )


class ArrayShipment:
    """Parent-side packer: swaps ndarrays for refs, owns the shm segments.

    Call :meth:`pack` on each payload before submitting it to a worker, and
    :meth:`cleanup` once every worker result has been collected — the
    segments must outlive the workers' reads.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def pack(self, obj):
        """Deep-copy ``obj`` with every ndarray replaced by a ref."""
        if isinstance(obj, np.ndarray):
            return self._pack_array(obj)
        if isinstance(obj, CsrMatrix):
            # Components ship individually: store-backed ones (memmaps) go
            # as path descriptors, in-RAM ones through shared memory.
            return CsrRef(
                shape=obj.shape,
                indptr=self._pack_array(obj.indptr),
                indices=self._pack_array(obj.indices),
                data=self._pack_array(obj.data),
            )
        if isinstance(obj, tuple):
            return tuple(self.pack(value) for value in obj)
        if isinstance(obj, list):
            return [self.pack(value) for value in obj]
        if isinstance(obj, dict):
            return {key: self.pack(value) for key, value in obj.items()}
        return obj

    def _pack_array(self, array: np.ndarray):
        if array.dtype == object or array.nbytes == 0:
            return array  # tiny or unshippable: plain pickle is fine
        if _is_shippable_memmap(array):
            return MmapArrayRef(
                path=str(array.filename),
                shape=array.shape,
                dtype=array.dtype.str,
                offset=int(array.offset),
            )
        segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
        self._segments.append(segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        return ShmArrayRef(name=segment.name, shape=array.shape, dtype=array.dtype.str)

    def cleanup(self) -> None:
        """Close and unlink every segment created by :meth:`pack`."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # already gone (crashed worker cleanup)
                pass
        self._segments.clear()

    def __enter__(self) -> "ArrayShipment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership of it.

    The parent that created the segment owns cleanup.  On Python 3.13+ the
    ``track=False`` parameter expresses that directly.  Before 3.13 merely
    attaching re-registers the name with the resource tracker; workers share
    the parent's tracker (the fd is inherited under both fork and spawn), so
    the duplicate registration is an idempotent set-add that the parent's
    ``unlink()`` clears — no action needed, and crucially no ``unregister``,
    which would strip the parent's own registration from the shared set.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        return shared_memory.SharedMemory(name=name)


class AttachedArrays:
    """Worker-side registry of mapped segments and the views into them.

    The views must all be dropped before the segments can be closed, so the
    holder keeps both and :meth:`release` tears them down in order.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.views: list[np.ndarray] = []

    def resolve(self, obj):
        """Deep-copy ``obj`` with every ref replaced by a live array view."""
        if isinstance(obj, ShmArrayRef):
            segment = _attach_segment(obj.name)
            self._segments.append(segment)
            view = np.ndarray(obj.shape, dtype=np.dtype(obj.dtype), buffer=segment.buf)
            self.views.append(view)
            return view
        if isinstance(obj, MmapArrayRef):
            view = np.memmap(
                obj.path,
                dtype=np.dtype(obj.dtype),
                mode="r",
                offset=obj.offset,
                shape=obj.shape,
                order="C",
            )
            self.views.append(view)
            return view
        if isinstance(obj, CsrRef):
            # Structure was validated when the parent built the CsrMatrix;
            # re-validating here would page through every worker's indices.
            return CsrMatrix(
                obj.shape,
                self.resolve(obj.indptr),
                self.resolve(obj.indices),
                self.resolve(obj.data),
                validate=False,
            )
        if isinstance(obj, tuple):
            return tuple(self.resolve(value) for value in obj)
        if isinstance(obj, list):
            return [self.resolve(value) for value in obj]
        if isinstance(obj, dict):
            return {key: self.resolve(value) for key, value in obj.items()}
        return obj

    def copy_if_shared(self, obj):
        """Deep-copy ``obj`` so no ndarray in it aliases a mapped segment.

        Results are pickled back to the parent *after* the worker function
        returns; any result still viewing a segment we are about to close
        would be read from unmapped memory.  ``may_share_memory`` is a cheap
        bounds check — false positives just cost a copy.
        """
        if isinstance(obj, np.ndarray):
            if any(np.may_share_memory(obj, view) for view in self.views):
                return np.array(obj)
            return obj
        if isinstance(obj, CsrMatrix):
            return CsrMatrix(
                obj.shape,
                self.copy_if_shared(obj.indptr),
                self.copy_if_shared(obj.indices),
                self.copy_if_shared(obj.data),
                validate=False,
            )
        if isinstance(obj, tuple):
            return tuple(self.copy_if_shared(value) for value in obj)
        if isinstance(obj, list):
            return [self.copy_if_shared(value) for value in obj]
        if isinstance(obj, dict):
            return {key: self.copy_if_shared(value) for key, value in obj.items()}
        if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            changes = {
                field.name: self.copy_if_shared(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            }
            return dataclasses.replace(obj, **changes)
        return obj

    def release(self) -> None:
        """Drop all views, then close the mapped segments."""
        self.views.clear()
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view escaped; leak it
                pass
        self._segments.clear()
