"""Order-preserving map helpers over the pluggable execution backends.

``parallel_map`` and ``map_partitioned`` are the historical entry points
(kept for every solver and test that grew around them); both now dispatch
through :mod:`repro.parallel.backends`.  A ``backend`` argument accepts a
registry name (``"serial"``, ``"thread"``, ``"process"``) — in which case a
backend is constructed and torn down around the call — or a live
:class:`~repro.parallel.backends.ExecutionBackend`, which is reused and left
open (how DPar2 shares one process pool across compression and all sweeps).

Both helpers degenerate to a plain loop for a single worker (no pool
overhead — important for fair single-thread timings in the Fig. 11(c)
scalability study).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.parallel.backends import ExecutionBackend, get_backend


def _resolve(backend, n_threads: int) -> tuple[ExecutionBackend, bool]:
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    owned = not isinstance(backend, ExecutionBackend)
    return get_backend(backend, n_threads), owned


def parallel_map(
    func: Callable,
    items: Sequence,
    n_threads: int = 1,
    backend: "str | ExecutionBackend" = "thread",
) -> list:
    """Apply ``func`` to every item, preserving order.

    Parameters
    ----------
    func:
        Callable applied to each item (must be picklable for the process
        backend: a module-level function or a ``functools.partial`` of one).
    items:
        The work items (e.g. slice matrices).
    n_threads:
        Worker count when ``backend`` is given by name; ignored for a live
        backend instance, whose own worker count wins.
    backend:
        Execution backend name or instance.
    """
    resolved, owned = _resolve(backend, n_threads)
    try:
        return resolved.map(func, items)
    finally:
        if owned:
            resolved.close()


def map_partitioned(
    func: Callable,
    items: Sequence,
    weights: Sequence[float],
    n_threads: int = 1,
    backend: "str | ExecutionBackend" = "thread",
) -> list:
    """Apply ``func`` to every item with Algorithm-4 load balancing.

    Items are grouped by :func:`~repro.parallel.partition.greedy_partition`
    over ``weights``; each worker processes its whole group sequentially
    (mirroring the paper's per-thread slice sets ``Ti``).  Results come back
    in input order.

    Parameters
    ----------
    func:
        Callable applied to each item (picklable for the process backend).
    items:
        The work items (e.g. slice matrices).
    weights:
        Per-item cost estimates (e.g. row counts ``Ik``).
    n_threads:
        Worker count ``T`` when ``backend`` is given by name.
    backend:
        Execution backend name or instance.
    """
    if len(items) != len(weights):
        raise ValueError(
            f"items and weights must align: {len(items)} vs {len(weights)}"
        )
    resolved, owned = _resolve(backend, n_threads)
    try:
        return resolved.map_partitioned(func, items, weights)
    finally:
        if owned:
            resolved.close()
