"""Thread-pool execution helpers.

``parallel_map`` preserves input order and degenerates to a plain loop for a
single thread (no pool overhead — important for fair single-thread timings
in the Fig. 11(c) scalability study).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.parallel.partition import greedy_partition


def parallel_map(func: Callable, items: Sequence, n_threads: int = 1) -> list:
    """Apply ``func`` to every item, preserving order.

    With ``n_threads == 1`` this is a list comprehension; otherwise a
    ``ThreadPoolExecutor.map`` over the items.
    """
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    if n_threads == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return list(pool.map(func, items))


def map_partitioned(
    func: Callable,
    items: Sequence,
    weights: Sequence[float],
    n_threads: int = 1,
) -> list:
    """Apply ``func`` to every item with Algorithm-4 load balancing.

    Items are grouped by :func:`greedy_partition` over ``weights``; each
    thread processes its whole group sequentially (mirroring the paper's
    per-thread slice sets ``Ti``).  Results come back in input order.

    Parameters
    ----------
    func:
        Callable applied to each item.
    items:
        The work items (e.g. slice matrices).
    weights:
        Per-item cost estimates (e.g. row counts ``Ik``).
    n_threads:
        Number of worker threads ``T``.
    """
    if len(items) != len(weights):
        raise ValueError(
            f"items and weights must align: {len(items)} vs {len(weights)}"
        )
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    if n_threads == 1 or len(items) <= 1:
        return [func(item) for item in items]

    groups = greedy_partition(weights, n_threads)
    results: list = [None] * len(items)

    def run_group(indices: list[int]) -> None:
        for idx in indices:
            results[idx] = func(items[idx])

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(run_group, group) for group in groups if group]
        for future in futures:
            future.result()
    return results
