"""Model serving: persist, version, and answer queries against fitted models.

The paper's end goal is not the factor matrices themselves but what they
answer — Table 3 ranks similar stocks by comparing rows of the learned
factors.  This package turns a fitted :class:`~repro.decomposition.result.Parafac2Result`
into a queryable system, in three layers:

* :mod:`repro.serve.store` — :class:`FactorStore`, a versioned on-disk model
  registry (manifest + ``.npy`` segments in the
  :class:`~repro.tensor.mmap_store.MmapSliceStore` idiom, memmap-backed
  load, atomic publish).
* :mod:`repro.serve.queries` — :class:`QueryEngine`, batched similar-entity
  ranking, slice reconstruction, fold-in projection of unseen slices, and
  reconstruction-error anomaly scores over one model snapshot.
* :mod:`repro.serve.service` — a stdlib-only asyncio HTTP service with
  adaptive request micro-batching (the coalescing window opens only under
  queue pressure), HTTP/1.1 keep-alive, an LRU of per-version engines, and
  zero-downtime hot swap when the registry publishes a new version.

See ``docs/architecture.md`` for how this layer sits on the kernels and
``docs/serving.md`` for the operator guide.
"""

from repro.serve.queries import FoldInResult, QueryEngine
from repro.serve.store import FactorStore, ModelArtifact, read_model, write_model
from repro.serve.service import (
    MicroBatcher,
    ModelHost,
    ServeApp,
    ServerHandle,
    ServiceError,
    start_server_in_thread,
)

__all__ = [
    "FactorStore",
    "FoldInResult",
    "MicroBatcher",
    "ModelArtifact",
    "ModelHost",
    "QueryEngine",
    "ServeApp",
    "ServerHandle",
    "ServiceError",
    "read_model",
    "start_server_in_thread",
    "write_model",
]
