"""Versioned on-disk model registry: manifest + ``.npy`` segment payloads.

Two layers share one payload format:

* :func:`write_model` / :func:`read_model` persist a single
  :class:`~repro.decomposition.result.Parafac2Result` as a directory holding
  a JSON manifest plus one ``.npy`` file per factor — the
  :class:`~repro.tensor.mmap_store.MmapSliceStore` idiom.  Loading maps the
  factors back as read-only ``np.memmap`` views, so opening a model touches
  only the pages a query actually reads.  ``Parafac2Result.save``/``load``
  delegate here.
* :class:`FactorStore` stacks versioning on top: a registry directory whose
  ``versions/v0000001, v0000002, …`` subdirectories are immutable model
  payloads.  Publishing writes into a temporary sibling directory and
  renames it into place, then flips the ``LATEST`` pointer file with an
  atomic replace — readers either see the old complete version or the new
  complete version, never a half-written one.  That is what lets a serving
  process hot-swap models while requests are in flight.

The manifest carries a ``schema_version`` so future layout changes stay
detectable, the factor ``dtype``, and (optionally) the
:class:`~repro.util.config.DecompositionConfig` the model was fitted with,
so a registry entry is self-describing: rank, backend, dtype, and seed all
round-trip.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.util import faults
from repro.util.config import DecompositionConfig

MODEL_MANIFEST_NAME = "model.json"
_MODEL_FORMAT = "repro-parafac2-model"
#: Payload layout revision.  Bump when the segment naming or manifest keys
#: change incompatibly; readers reject schema versions they do not know.
SCHEMA_VERSION = 1

_REGISTRY_MARKER = "registry.json"
_REGISTRY_FORMAT = "repro-factor-registry"
_LATEST_NAME = "LATEST"
_VERSIONS_DIR = "versions"


def _config_to_dict(config: DecompositionConfig) -> dict:
    """JSON-safe view of a config (see :meth:`DecompositionConfig.to_dict`)."""
    return config.to_dict()


def _config_from_dict(payload: dict) -> DecompositionConfig:
    return DecompositionConfig.from_dict(payload)


def _q_filename(index: int) -> str:
    return f"Q_{index:06d}.npy"


def write_model(
    directory,
    result: Parafac2Result,
    *,
    config: DecompositionConfig | None = None,
    extra: dict | None = None,
) -> Path:
    """Persist ``result`` (and optionally its config) under ``directory``.

    The directory must not already hold a model.  Every factor is written
    C-contiguous in its own dtype, so :func:`read_model` can hand back
    zero-copy memmap views.  ``extra`` is a JSON-safe dict merged into the
    manifest's ``meta`` key (tags, dataset name, …).
    """
    directory = Path(directory)
    manifest_path = directory / MODEL_MANIFEST_NAME
    if manifest_path.exists():
        raise FileExistsError(f"{manifest_path} already exists; model payloads are immutable")
    directory.mkdir(parents=True, exist_ok=True)

    files = {"H": "H.npy", "S": "S.npy", "V": "V.npy",
             "Q": [_q_filename(k) for k in range(result.n_slices)]}
    np.save(directory / files["H"], np.ascontiguousarray(result.H))
    np.save(directory / files["S"], np.ascontiguousarray(result.S))
    np.save(directory / files["V"], np.ascontiguousarray(result.V))
    for k, Qk in enumerate(result.Q):
        np.save(directory / files["Q"][k], np.ascontiguousarray(Qk))

    manifest = {
        "format": _MODEL_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "dtype": np.dtype(result.H.dtype).name,
        "method": result.method,
        "rank": result.rank,
        "n_slices": result.n_slices,
        "n_columns": int(result.V.shape[0]),
        "row_counts": [int(Qk.shape[0]) for Qk in result.Q],
        "n_iterations": result.n_iterations,
        "converged": bool(result.converged),
        "preprocess_seconds": float(result.preprocess_seconds),
        "iterate_seconds": float(result.iterate_seconds),
        "preprocessed_bytes": int(result.preprocessed_bytes),
        "history": [[r.iteration, r.criterion, r.seconds] for r in result.history],
        "config": None if config is None else _config_to_dict(config),
        "meta": dict(extra or {}),
        "files": files,
    }
    manifest_path.write_text(json.dumps(manifest, indent=1))
    return directory


@dataclass(frozen=True)
class ModelArtifact:
    """One loaded registry entry: the model plus its self-description."""

    result: Parafac2Result
    config: DecompositionConfig | None
    schema_version: int
    meta: dict
    version: int | None = None

    @property
    def dtype(self) -> np.dtype:
        """Working dtype of the stored factors."""
        return self.result.H.dtype


def read_model(directory, *, mmap: bool = True, version: int | None = None) -> ModelArtifact:
    """Load a model payload written by :func:`write_model`.

    With ``mmap=True`` (default) the factors come back as read-only
    ``np.memmap`` views — a registry with many large versions costs pages,
    not RAM.  Pass ``mmap=False`` for in-RAM copies (e.g. before deleting
    the directory).
    """
    directory = Path(directory)
    manifest_path = directory / MODEL_MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no model payload at {directory} ({MODEL_MANIFEST_NAME} missing)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{manifest_path} is not valid JSON: {exc}") from exc
    if manifest.get("format") != _MODEL_FORMAT:
        raise ValueError(f"{manifest_path} is not a {_MODEL_FORMAT} manifest")
    if manifest.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported model schema version {manifest.get('schema_version')!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )

    mode = "r" if mmap else None
    files = manifest["files"]

    def _load(name: str) -> np.ndarray:
        path = directory / name
        if not path.exists():
            raise ValueError(f"model payload segment missing: {path}")
        return np.load(path, mmap_mode=mode)

    result = Parafac2Result(
        Q=[_load(name) for name in files["Q"]],
        H=_load(files["H"]),
        S=_load(files["S"]),
        V=_load(files["V"]),
        method=manifest.get("method", "unknown"),
        n_iterations=int(manifest.get("n_iterations", 0)),
        converged=bool(manifest.get("converged", False)),
        preprocess_seconds=float(manifest.get("preprocess_seconds", 0.0)),
        iterate_seconds=float(manifest.get("iterate_seconds", 0.0)),
        preprocessed_bytes=int(manifest.get("preprocessed_bytes", 0)),
        history=[
            IterationRecord(int(it), float(crit), float(sec))
            for it, crit, sec in manifest.get("history", [])
        ],
    )
    declared = np.dtype(manifest["dtype"])
    if result.H.dtype != declared:
        raise ValueError(
            f"model manifest declares dtype {declared.name} but segments "
            f"hold {result.H.dtype.name} — payload is corrupt"
        )
    config_payload = manifest.get("config")
    config = None if config_payload is None else _config_from_dict(config_payload)
    return ModelArtifact(
        result=result,
        config=config,
        schema_version=int(manifest["schema_version"]),
        meta=dict(manifest.get("meta", {})),
        version=version,
    )


class FactorStore:
    """A versioned registry of PARAFAC2 models under one directory.

    Layout::

        registry/
          registry.json        # format marker
          LATEST               # "3\\n" — atomic pointer to the live version
          versions/
            v0000001/model.json + *.npy
            v0000002/…

    Versions are immutable once published and numbered monotonically;
    :meth:`publish` is atomic (temp directory + rename + pointer replace),
    so concurrent readers — including a serving process mid-request — never
    observe a partial model.  Old versions stay on disk until
    :meth:`prune`, which is what makes zero-downtime hot swap safe: requests
    started against version ``n`` keep their memmaps while ``n+1`` goes
    live.

    Example
    -------
    >>> import numpy as np, tempfile
    >>> from repro import DecompositionConfig, dpar2, random_irregular_tensor
    >>> tensor = random_irregular_tensor([20, 30], n_columns=12, random_state=0)
    >>> result = dpar2(tensor, DecompositionConfig(rank=3, random_state=0))
    >>> store = FactorStore(tempfile.mkdtemp())
    >>> store.publish(result)
    1
    >>> store.latest().result.rank
    3
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._versions_dir = self.root / _VERSIONS_DIR
        marker = self.root / _REGISTRY_MARKER
        if marker.exists():
            payload = json.loads(marker.read_text())
            if payload.get("format") != _REGISTRY_FORMAT:
                raise ValueError(f"{self.root} is not a {_REGISTRY_FORMAT} registry")
            if payload.get("schema_version") != SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported registry schema version "
                    f"{payload.get('schema_version')!r} "
                    f"(this build reads version {SCHEMA_VERSION})"
                )
        else:
            self._versions_dir.mkdir(parents=True, exist_ok=True)
            marker.write_text(json.dumps(
                {"format": _REGISTRY_FORMAT, "schema_version": SCHEMA_VERSION}
            ))

    # ------------------------------------------------------------------ #
    # version bookkeeping
    # ------------------------------------------------------------------ #

    @staticmethod
    def _version_name(version: int) -> str:
        return f"v{version:07d}"

    def version_dir(self, version: int) -> Path:
        """Directory holding ``version``'s immutable payload."""
        return self._versions_dir / self._version_name(int(version))

    def versions(self) -> list[int]:
        """All published version numbers, ascending."""
        if not self._versions_dir.exists():
            return []
        out = []
        for entry in self._versions_dir.iterdir():
            name = entry.name
            if entry.is_dir() and name.startswith("v") and name[1:].isdigit():
                if (entry / MODEL_MANIFEST_NAME).exists():
                    out.append(int(name[1:]))
        return sorted(out)

    def latest_version(self) -> int | None:
        """The live version per the ``LATEST`` pointer (None when empty).

        Falls back to the highest complete version directory when the
        pointer is missing or stale (e.g. a publisher crashed between the
        rename and the pointer flip — the rename already made the version
        complete, so serving it is correct).
        """
        published = self.versions()
        if not published:
            return None
        pointer = self.root / _LATEST_NAME
        try:
            pointed = int(pointer.read_text().strip())
        except (FileNotFoundError, ValueError):
            return published[-1]
        return pointed if pointed in published else published[-1]

    def __len__(self) -> int:
        """Number of published versions."""
        return len(self.versions())

    def __repr__(self) -> str:
        """Summarize root path, version count, and latest version."""
        return (
            f"FactorStore({str(self.root)!r}, {len(self)} versions, "
            f"latest={self.latest_version()})"
        )

    # ------------------------------------------------------------------ #
    # publish / load
    # ------------------------------------------------------------------ #

    def publish(
        self,
        result: Parafac2Result,
        *,
        config: DecompositionConfig | None = None,
        extra: dict | None = None,
    ) -> int:
        """Atomically add ``result`` as the next version; returns its number.

        The payload is written into a temporary sibling directory, renamed
        into ``versions/`` (atomic on POSIX: the version either fully exists
        or not at all), and only then does the ``LATEST`` pointer move via
        ``os.replace``.  A concurrent publisher racing for the same number
        loses the rename and retries with the next one.
        """
        self._versions_dir.mkdir(parents=True, exist_ok=True)
        meta = dict(extra or {})
        meta.setdefault("published_at", time.strftime("%Y-%m-%dT%H:%M:%S%z"))
        staging = Path(tempfile.mkdtemp(prefix=".publish-", dir=self._versions_dir))
        try:
            write_model(staging, result, config=config, extra=meta)
            # Fault-injection site: a publisher killed here leaves only a
            # hidden staging dir — versions() never lists it, readers keep
            # serving the previous version (tests/test_faults.py).
            faults.check("store.publish.staged")
            while True:
                version = (self.versions() or [0])[-1] + 1
                target = self.version_dir(version)
                try:
                    staging.rename(target)
                    break
                except OSError:
                    if not target.exists():  # pragma: no cover - real failure
                        raise
                    # Lost the race for this number; try the next.
        finally:
            if staging.exists():  # rename failed — don't leak the staging dir
                for child in staging.iterdir():
                    child.unlink()
                staging.rmdir()
        # Fault-injection site: killed between rename and pointer flip — the
        # new version directory is complete (pinnable by number), but the
        # publish never committed: LATEST still names the previous version,
        # which readers keep serving.
        faults.check("store.publish.renamed")
        self._point_latest(version)
        return version

    def _point_latest(self, version: int) -> None:
        pointer = self.root / _LATEST_NAME
        fd, tmp = tempfile.mkstemp(prefix=".latest-", dir=self.root)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{int(version)}\n")
            os.replace(tmp, pointer)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def get(self, version: int, *, mmap: bool = True) -> ModelArtifact:
        """Load one published version (memmap-backed by default)."""
        version = int(version)
        target = self.version_dir(version)
        if not (target / MODEL_MANIFEST_NAME).exists():
            raise KeyError(
                f"version {version} not in registry {self.root} "
                f"(published: {self.versions() or 'none'})"
            )
        return read_model(target, mmap=mmap, version=version)

    def latest(self, *, mmap: bool = True) -> ModelArtifact:
        """Load the live version; raises ``LookupError`` on an empty registry."""
        version = self.latest_version()
        if version is None:
            raise LookupError(f"registry {self.root} has no published versions")
        return self.get(version, mmap=mmap)

    def prune(self, *, keep: int = 2) -> list[int]:
        """Delete all but the newest ``keep`` versions; returns those removed.

        The live (pointed-to) version is never removed.  Only call this when
        no serving process still holds memmaps into the doomed versions.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        live = self.latest_version()
        doomed = [
            v for v in self.versions()[:-keep] if v != live
        ]
        for version in doomed:
            target = self.version_dir(version)
            for child in target.iterdir():
                child.unlink()
            target.rmdir()
        return doomed
