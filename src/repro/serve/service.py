"""Stdlib-only asyncio HTTP service over a :class:`FactorStore` registry.

Three serving concerns live here:

* :class:`ModelHost` — version resolution: holds an LRU of per-version
  :class:`~repro.serve.queries.QueryEngine` derived state and the *current*
  (hot) version.  :meth:`ModelHost.refresh` notices a newly published
  registry version, builds its engine off the event loop, and swaps the
  current pointer atomically — in-flight requests keep the engine reference
  they resolved at arrival, so a publish never drops or corrupts them
  (registry versions are immutable directories; the old memmaps stay
  valid).
* :class:`MicroBatcher` — request coalescing: concurrent similar-entity
  queries that arrive within one batching window are answered by a single
  batched :meth:`QueryEngine.similar` call instead of one kernel invocation
  per request.  The kernels are batch-invariant on the numpy backend, so
  coalescing is invisible in the answers (bitwise), only in the throughput.
* :class:`ServeApp` — a minimal HTTP/1.1 server on ``asyncio.start_server``
  (no third-party framework; the container ships none).  JSON in, JSON out,
  ``Connection: close`` semantics — deliberately boring, so the interesting
  parts stay testable.

Endpoints (all bodies JSON)::

    GET  /healthz                 liveness + serving version + batch counters
    GET  /v1/model                model card of the serving (or ?version=) snapshot
    GET  /v1/versions             published versions + which one is live
    POST /v1/similar              {"mode","index"|"indices","k"?,"version"?}
    POST /v1/reconstruct          {"slice","rows"?,"version"?}
    POST /v1/fold-in              {"slice":[[..]],"seed"?,"sweeps"?,"neighbors"?,"version"?}
    POST /v1/anomaly              {"slice":[[..]],"seed"?,"version"?}
    POST /admin/reload            adopt the registry's latest version now
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.serve.queries import QueryEngine
from repro.serve.store import FactorStore


class ServiceError(Exception):
    """A request error with an HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ModelHost:
    """Registry-backed engine cache with an atomically swappable current.

    Thread-safe: ``refresh`` may run on an executor thread while the event
    loop resolves engines for requests.  Engines are immutable once built,
    so readers only ever need the lock to look up / insert cache entries —
    never to use an engine.
    """

    def __init__(
        self,
        store: FactorStore,
        *,
        lru_size: int = 4,
        engine_kwargs: dict | None = None,
    ) -> None:
        if lru_size < 1:
            raise ValueError(f"lru_size must be >= 1, got {lru_size}")
        self.store = store
        self.lru_size = lru_size
        self.engine_kwargs = dict(engine_kwargs or {})
        self._lock = threading.Lock()
        self._engines: "OrderedDict[int, QueryEngine]" = OrderedDict()
        self._current: QueryEngine | None = None

    # ------------------------------------------------------------------ #

    def _build(self, version: int) -> QueryEngine:
        artifact = self.store.get(version)
        return QueryEngine(
            artifact.result,
            config=artifact.config,
            version=version,
            **self.engine_kwargs,
        )

    def engine(self, version: int | None = None) -> QueryEngine:
        """The engine for ``version`` (None → the current serving version).

        Explicit versions hit the LRU; misses load from the registry (a
        pinned old version keeps answering even after newer publishes).
        """
        if version is None:
            current = self._current
            if current is None:
                return self.refresh()
            return current
        version = int(version)
        with self._lock:
            cached = self._engines.get(version)
            if cached is not None:
                self._engines.move_to_end(version)
                return cached
        try:
            engine = self._build(version)
        except KeyError as exc:
            raise ServiceError(404, str(exc.args[0] if exc.args else exc)) from exc
        self._admit(engine)
        return engine

    def _admit(self, engine: QueryEngine) -> None:
        with self._lock:
            self._engines[engine.version] = engine
            self._engines.move_to_end(engine.version)
            current_version = None if self._current is None else self._current.version
            while len(self._engines) > self.lru_size:
                for candidate in self._engines:
                    if candidate != current_version:
                        del self._engines[candidate]
                        break
                else:  # pragma: no cover - only the current engine remains
                    break

    def refresh(self) -> QueryEngine:
        """Adopt the registry's latest version; returns the current engine.

        Building the new engine happens *before* the swap, so requests keep
        being answered by the old version for the whole load; the final
        pointer assignment is atomic.
        """
        latest = self.store.latest_version()
        if latest is None:
            raise ServiceError(503, f"registry {self.store.root} has no published versions")
        current = self._current
        if current is not None and current.version == latest:
            return current
        with self._lock:
            cached = self._engines.get(latest)
        engine = cached if cached is not None else self._build(latest)
        self._current = engine  # the hot swap: a single reference assignment
        self._admit(engine)  # after the swap, so eviction protects the new version
        return engine

    @property
    def current_version(self) -> int | None:
        current = self._current
        return None if current is None else current.version

    def cached_versions(self) -> list[int]:
        with self._lock:
            return list(self._engines)


class MicroBatcher:
    """Coalesce concurrent awaitable requests into batched kernel calls.

    ``runner`` receives the list of pending payloads and returns one result
    per payload, in order.  A submission flushes immediately once
    ``max_batch`` requests are pending, otherwise after ``window`` seconds —
    long enough for concurrent arrivals to pile up, short enough to be
    invisible next to network latency.  Counters (`batches`, `requests`)
    make the coalescing observable to health checks and benchmarks.
    """

    def __init__(self, runner, *, window: float = 0.002, max_batch: int = 64) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._runner = runner
        self.window = window
        self.max_batch = max_batch
        self._pending: list[tuple[object, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self.batches = 0
        self.requests = 0

    async def submit(self, payload):
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((payload, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if not batch:
            return
        self.batches += 1
        self.requests += len(batch)
        try:
            results = self._runner([payload for payload, _ in batch])
        except Exception as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        # A runner may fail some payloads without poisoning the rest by
        # returning an Exception in that payload's slot.
        for (_, future), result in zip(batch, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)


def _json_default(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class ServeApp:
    """The HTTP front: routing, micro-batching, background registry polls."""

    def __init__(
        self,
        host: ModelHost,
        *,
        batch_window: float = 0.002,
        max_batch: int = 64,
        poll_interval: float = 0.0,
    ) -> None:
        self.host = host
        self.poll_interval = poll_interval
        self.port: int | None = None
        self._started = time.monotonic()
        self._shutdown: asyncio.Event | None = None
        self._batcher = MicroBatcher(
            self._run_similar_batch, window=batch_window, max_batch=max_batch
        )

    # ------------------------------------------------------------------ #
    # kernels behind the batcher
    # ------------------------------------------------------------------ #

    def _run_similar_batch(self, payloads: list[dict]) -> list:
        """One batched ``similar`` kernel call per (engine, mode, k) group.

        Payloads pinned to different versions (or asking different ``k``)
        cannot share a contraction, so they group by engine identity + query
        shape; within a group the whole batch is one kernel call.  A group
        that fails (e.g. a bad index that slipped past request validation)
        gets its exception in its own slots only — co-batched requests from
        other clients are never poisoned by it.
        """
        results: list = [None] * len(payloads)
        groups: dict[tuple, list[int]] = {}
        for i, payload in enumerate(payloads):
            key = (id(payload["engine"]), payload["mode"], payload["k"])
            groups.setdefault(key, []).append(i)
        for members in groups.values():
            engine: QueryEngine = payloads[members[0]]["engine"]
            mode = payloads[members[0]]["mode"]
            k = payloads[members[0]]["k"]
            indices = [payloads[i]["index"] for i in members]
            try:
                neighbors, scores = engine.similar(indices, k, mode=mode)
            except Exception as exc:
                for i in members:
                    results[i] = exc
                continue
            for row, i in enumerate(members):
                results[i] = self._similar_body(
                    engine, mode, payloads[i]["index"], neighbors[row], scores[row]
                )
        return results

    @staticmethod
    def _similar_body(engine, mode, index, neighbors, scores) -> dict:
        return {
            "version": engine.version,
            "mode": mode,
            "index": int(index),
            "neighbors": [
                {"index": int(n), "score": float(s)}
                for n, s in zip(neighbors, scores)
            ],
        }

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #

    async def _engine_for(self, body: dict) -> QueryEngine:
        """Resolve the engine a request runs against.

        A pinned version that misses the LRU loads the model from disk and
        precomputes its derived state — that happens on an executor thread,
        like ``refresh``, so one cold pinned query never stalls the event
        loop (and everyone else's requests) behind registry I/O.
        """
        version = body.get("version")
        if version is None:
            return self.host.engine()
        if not isinstance(version, int):
            raise ServiceError(400, f"version must be an integer, got {version!r}")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.host.engine, version)

    async def _dispatch(self, method: str, target: str, body: dict) -> tuple[int, dict]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)

        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "version": self.host.current_version,
                "uptime_seconds": time.monotonic() - self._started,
                "batches": self._batcher.batches,
                "batched_requests": self._batcher.requests,
            }
        if method == "GET" and path == "/v1/model":
            version = query.get("version", [None])[0]
            engine = await self._engine_for(
                {} if version is None else {"version": int(version)}
            )
            return 200, engine.metadata()
        if method == "GET" and path == "/v1/versions":
            return 200, {
                "versions": self.host.store.versions(),
                "latest": self.host.store.latest_version(),
                "serving": self.host.current_version,
                "cached": self.host.cached_versions(),
            }
        if method == "POST" and path == "/v1/similar":
            return await self._handle_similar(body)
        if method == "POST" and path == "/v1/reconstruct":
            return await self._handle_reconstruct(body)
        if method == "POST" and path == "/v1/fold-in":
            return await self._handle_fold_in(body)
        if method == "POST" and path == "/v1/anomaly":
            engine = await self._engine_for(body)
            fold = engine.fold_in(
                self._slice_from(body), seed=int(body.get("seed", 0))
            )
            return 200, {
                "version": engine.version,
                "score": fold.relative_residual,
                "residual_squared": fold.residual_squared,
                "norm_squared": fold.norm_squared,
            }
        if method == "POST" and path == "/admin/reload":
            loop = asyncio.get_running_loop()
            before = self.host.current_version
            engine = await loop.run_in_executor(None, self.host.refresh)
            return 200, {
                "version": engine.version,
                "swapped": engine.version != before,
            }
        raise ServiceError(404, f"no route for {method} {path}")

    async def _handle_similar(self, body: dict) -> tuple[int, dict]:
        engine = await self._engine_for(body)
        mode = body.get("mode", "slice")
        k = int(body.get("k", 10))
        if k < 1:
            raise ServiceError(400, f"k must be >= 1, got {k}")
        if "indices" in body:
            indices = body["indices"]
            if not isinstance(indices, list):
                raise ServiceError(400, "indices must be a list of integers")
            neighbors, scores = engine.similar(indices, k, mode=mode)
            return 200, {
                "version": engine.version,
                "mode": mode,
                "results": [
                    self._similar_body(engine, mode, idx, neighbors[b], scores[b])
                    for b, idx in enumerate(indices)
                ],
            }
        if "index" not in body:
            raise ServiceError(400, "similar query needs 'index' or 'indices'")
        index = int(body["index"])
        # Validate before joining a batch: a bad index must 400 here, not
        # fail the kernel call it would share with other clients' requests.
        n = engine.mode_size(mode)  # also rejects an unknown mode
        if not 0 <= index < n:
            raise ServiceError(
                400, f"index {index} out of range [0, {n}) for mode {mode!r}"
            )
        payload = {"engine": engine, "mode": mode, "k": k, "index": index}
        return 200, await self._batcher.submit(payload)

    async def _handle_reconstruct(self, body: dict) -> tuple[int, dict]:
        engine = await self._engine_for(body)
        if "slice" not in body:
            raise ServiceError(400, "reconstruct query needs 'slice' (an index)")
        k = int(body["slice"])
        rows = body.get("rows")
        values = engine.reconstruct(k, rows=rows)
        return 200, {
            "version": engine.version,
            "slice": k,
            "rows": rows if rows is not None else "all",
            "shape": list(values.shape),
            "values": values.tolist(),
        }

    @staticmethod
    def _slice_from(body: dict):
        data = body.get("slice")
        if not isinstance(data, list):
            raise ServiceError(400, "'slice' must be a 2-D array (list of rows)")
        try:
            return np.asarray(data, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, f"'slice' is not numeric: {exc}") from exc

    async def _handle_fold_in(self, body: dict) -> tuple[int, dict]:
        engine = await self._engine_for(body)
        fold = engine.fold_in(
            self._slice_from(body),
            seed=int(body.get("seed", 0)),
            sweeps=body.get("sweeps"),
        )
        response = {
            "version": engine.version,
            "weights": fold.weights.tolist(),
            "relative_residual": fold.relative_residual,
            "residual_squared": fold.residual_squared,
        }
        neighbors = body.get("neighbors")
        if neighbors is not None:
            idx, scores = engine.similar_to(fold.weights, int(neighbors), mode="slice")
            response["neighbors"] = [
                {"index": int(n), "score": float(s)}
                for n, s in zip(idx[0], scores[0])
            ]
        return 200, response

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request_line = await reader.readline()
            if not request_line:
                writer.close()
                return
            try:
                method, target, _ = request_line.decode("latin-1").split(" ", 2)
            except ValueError:
                raise ServiceError(400, "malformed request line") from None
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        raise ServiceError(400, "bad Content-Length") from None
            body: dict = {}
            if content_length:
                raw = await reader.readexactly(content_length)
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ServiceError(400, f"request body is not JSON: {exc}") from exc
                if not isinstance(body, dict):
                    raise ServiceError(400, "request body must be a JSON object")
            status, payload = await self._dispatch(method.upper(), target, body)
        except ServiceError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except (ValueError, IndexError, TypeError) as exc:
            status, payload = 400, {"error": str(exc)}
        except (LookupError, FileNotFoundError) as exc:
            status, payload = 404, {"error": str(exc)}
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        await self._write_response(writer, status, payload)

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int, payload: dict) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        try:
            body = json.dumps(payload, default=_json_default).encode()
            head = (
                f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ready: "threading.Event | None" = None,
    ) -> None:
        """Serve until :meth:`stop` — the current model loads before binding."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.host.refresh)
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection, host, port)
        self.port = server.sockets[0].getsockname()[1]
        poller = None
        if self.poll_interval > 0:
            poller = asyncio.ensure_future(self._poll_registry())
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            if poller is not None:
                poller.cancel()

    async def _poll_registry(self) -> None:
        """Adopt newly published versions without an explicit reload call."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval)
            try:
                await loop.run_in_executor(None, self.host.refresh)
            except Exception:  # registry transiently unreadable: keep serving
                pass

    def stop(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()


class ServerHandle:
    """A server running on a daemon thread (tests, benchmarks, notebooks)."""

    def __init__(self, app: ServeApp, thread: threading.Thread, loop: asyncio.AbstractEventLoop) -> None:
        self.app = app
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        return self.app.port

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def stop(self, timeout: float = 5.0) -> None:
        self._loop.call_soon_threadsafe(self.app.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_in_thread(
    registry,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    lru_size: int = 4,
    batch_window: float = 0.002,
    max_batch: int = 64,
    poll_interval: float = 0.0,
    engine_kwargs: dict | None = None,
) -> ServerHandle:
    """Spin up a serving thread over ``registry`` (a path or FactorStore).

    Returns once the socket is bound and the initial model is loaded; the
    handle exposes ``base_url`` and ``stop()`` (also a context manager).
    """
    store = registry if isinstance(registry, FactorStore) else FactorStore(registry)
    model_host = ModelHost(store, lru_size=lru_size, engine_kwargs=engine_kwargs)
    app = ServeApp(
        model_host,
        batch_window=batch_window,
        max_batch=max_batch,
        poll_interval=poll_interval,
    )
    ready = threading.Event()
    failure: list[BaseException] = []
    loop = asyncio.new_event_loop()

    def _serve() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(app.run(host, port, ready=ready))
        except BaseException as exc:  # surface startup failures to the caller
            failure.append(exc)
            ready.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_serve, name="repro-serve", daemon=True)
    thread.start()
    ready.wait(timeout=30.0)
    if failure:
        raise failure[0]
    if app.port is None:
        thread_alive = thread.is_alive()
        raise RuntimeError(
            f"server failed to start (thread alive: {thread_alive})"
        )
    return ServerHandle(app, thread, loop)
