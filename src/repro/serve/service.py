"""Stdlib-only asyncio HTTP service over a :class:`FactorStore` registry.

Three serving concerns live here:

* :class:`ModelHost` — version resolution: holds an LRU of per-version
  :class:`~repro.serve.queries.QueryEngine` derived state and the *current*
  (hot) version.  :meth:`ModelHost.refresh` notices a newly published
  registry version, builds its engine off the event loop, and swaps the
  current pointer atomically — in-flight requests keep the engine reference
  they resolved at arrival, so a publish never drops or corrupts them
  (registry versions are immutable directories; the old memmaps stay
  valid).
* :class:`MicroBatcher` — request coalescing: concurrent queries that
  arrive within one batching window are answered by a single batched
  :class:`~repro.serve.queries.QueryEngine` call instead of one kernel
  invocation per request.  The window is *adaptive*: it stays at zero
  while the queue is idle (a lone request never waits) and opens toward a
  configurable cap as observed batch depth rises, so coalescing only pays
  for itself under genuine queue pressure.  ``/v1/similar`` batches
  through the similarity kernel; ``/v1/fold-in`` and ``/v1/anomaly``
  coalesce through :meth:`QueryEngine.fold_in_many`.  All three kernels
  are batch-invariant on the numpy backend, so coalescing is invisible in
  the answers (bitwise), only in the throughput.
* :class:`ServeApp` — a minimal HTTP/1.1 server on ``asyncio.start_server``
  (no third-party framework; the container ships none).  JSON in, JSON
  out, with HTTP/1.1 keep-alive semantics: a connection serves requests
  until the client sends ``Connection: close`` (or an HTTP/1.0 client
  omits ``keep-alive``), so steady traffic pays the TCP handshake once.
  Hot read-only responses are pre-serialized: the current model card is
  cached as encoded bytes per engine, and ``/healthz`` renders through a
  constant format string instead of ``json.dumps``.

Endpoints (all bodies JSON)::

    GET  /healthz                 liveness + serving version + transport counters
    GET  /metrics                 Prometheus text exposition of the app registry
    GET  /v1/model                model card of the serving (or ?version=) snapshot
    GET  /v1/versions             published versions + which one is live
    POST /v1/similar              {"mode","index"|"indices","k"?,"version"?}
    POST /v1/reconstruct          {"slice","rows"?,"version"?}
    POST /v1/fold-in              {"slice":[[..]],"seed"?,"sweeps"?,"neighbors"?,"version"?}
    POST /v1/anomaly              {"slice":[[..]],"seed"?,"version"?}
    POST /admin/reload            adopt the registry's latest version now

Malformed payloads (missing keys, wrong types, out-of-range values) are
rejected with HTTP 400 and a JSON ``{"error": ...}`` body *before* the
request joins a batch, so one bad request can never poison the kernel
call it would have shared with other clients.

Robustness (``docs/operations.md`` catalogues the failure modes):

* **Deadlines** — ``request_timeout`` bounds every dispatch with
  ``asyncio.wait_for``; an expired request answers 503 with a
  ``Retry-After`` header and bumps the ``timeouts`` counter.
* **Load shedding** — each :class:`MicroBatcher` can cap its pending
  queue (``max_queue``); submissions beyond the cap are rejected with
  503 + ``Retry-After`` *before* they buffer anything (``shed`` counter).
* **Body caps** — ``max_body_bytes`` rejects oversized uploads with 413
  from the ``Content-Length`` header alone, without reading the body.
* **Graceful drain** — SIGTERM/SIGINT stop the listener, let in-flight
  requests finish (bounded by ``drain_timeout``), and exit cleanly;
  responses written while draining carry ``Connection: close``.
* **Version quarantine** — a published version whose engine build fails
  is quarantined and the previous version keeps serving;
  ``/admin/reload`` retries quarantined versions.

All of it is observable under the ``"faults"`` key of ``/healthz``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from collections import OrderedDict
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro.obs import exposition, trace
from repro.obs.metrics import Counter, MetricsRegistry
from repro.serve.queries import QueryEngine
from repro.serve.store import FactorStore
from repro.util import faults

#: Hard cap on header lines per request — a framing sanity bound, not a
#: tunable (real clients send a handful).
_MAX_HEADER_LINES = 256

#: Default cap on request body size (bytes); oversized uploads answer 413
#: without ever being buffered.
DEFAULT_MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _PromText(bytes):
    """Pre-encoded response body that must ship as Prometheus text.

    ``_write_response`` keys the ``Content-Type`` header off this type, so
    ``GET /metrics`` answers with the text-exposition media type while
    every other pre-encoded hot path stays ``application/json``.
    """

    __slots__ = ()


class ServiceError(Exception):
    """A request error with an HTTP status attached.

    Parameters
    ----------
    status:
        HTTP status code the error maps to (400, 404, 503, ...).
    message:
        Human-readable description, returned as the JSON ``error`` body.
    close:
        When True the connection cannot be kept alive after responding —
        used for framing errors (bad request line, bad ``Content-Length``)
        where the next request boundary is unknowable.
    retry_after:
        Seconds the client should wait before retrying; rendered as a
        ``Retry-After`` response header (used by 503 shedding/deadline
        responses so well-behaved clients back off instead of hammering).
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        close: bool = False,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.close = close
        self.retry_after = retry_after


def _int_field(body: dict, key: str, default=None, *, minimum: int | None = None):
    """Read an optional integer field out of a JSON request body.

    Parameters
    ----------
    body:
        Decoded JSON request body.
    key:
        Field name to read.
    default:
        Value used when the field is absent; ``None`` means "optional" and
        is returned as-is.
    minimum:
        Inclusive lower bound enforced on present values.

    Returns
    -------
    int or None
        The validated integer (or ``None`` when absent without default).

    Raises
    ------
    ServiceError
        With status 400 when the value is not integer-like (booleans are
        rejected — JSON ``true`` is never a valid count) or below
        ``minimum``.
    """
    value = body.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool):
        raise ServiceError(400, f"{key!r} must be an integer, got a boolean")
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ServiceError(400, f"{key!r} must be an integer, got {value!r}") from None
    if minimum is not None and value < minimum:
        raise ServiceError(400, f"{key!r} must be >= {minimum}, got {value}")
    return value


class ModelHost:
    """Registry-backed engine cache with an atomically swappable current.

    Thread-safe: ``refresh`` may run on an executor thread while the event
    loop resolves engines for requests.  Engines are immutable once built,
    so readers only ever need the lock to look up / insert cache entries —
    never to use an engine.

    Parameters
    ----------
    store:
        The :class:`~repro.serve.store.FactorStore` registry to serve.
    lru_size:
        How many per-version :class:`QueryEngine` instances to keep warm;
        the current serving version is never evicted.
    engine_kwargs:
        Extra keyword arguments forwarded to every ``QueryEngine``
        construction (e.g. ``fold_in_sweeps``, ``compute_backend``).

    Raises
    ------
    ValueError
        If ``lru_size`` is below 1.
    """

    def __init__(
        self,
        store: FactorStore,
        *,
        lru_size: int = 4,
        engine_kwargs: dict | None = None,
    ) -> None:
        if lru_size < 1:
            raise ValueError(f"lru_size must be >= 1, got {lru_size}")
        self.store = store
        self.lru_size = lru_size
        self.engine_kwargs = dict(engine_kwargs or {})
        self._lock = threading.Lock()
        self._engines: "OrderedDict[int, QueryEngine]" = OrderedDict()
        self._current: QueryEngine | None = None
        self._quarantined: dict[int, str] = {}
        self._meta: dict[int, dict] = {}

    # ------------------------------------------------------------------ #

    def _build(self, version: int) -> QueryEngine:
        artifact = self.store.get(version)
        engine = QueryEngine(
            artifact.result,
            config=artifact.config,
            version=version,
            **self.engine_kwargs,
        )
        with self._lock:
            self._meta[version] = dict(artifact.meta)
        return engine

    def engine_backend(self) -> str:
        """Resolved compute-backend name the served engines run on."""
        current = self._current
        if current is not None:
            return current.compute_backend
        spec = self.engine_kwargs.get("compute_backend", "numpy")
        return spec if isinstance(spec, str) else getattr(spec, "name", str(spec))

    def transfer_stats(self) -> dict:
        """Host↔device traffic summed over every live engine.

        All-zero on the numpy backend.  Evicted engines take their counts
        with them, so this tracks the working set, not all-time totals —
        which is the number an operator watching residency actually wants.
        """
        totals = {"h2d_calls": 0, "h2d_bytes": 0, "d2h_calls": 0, "d2h_bytes": 0}
        with self._lock:
            engines = list(self._engines.values())
            current = self._current
        if current is not None and all(current is not e for e in engines):
            engines.append(current)
        for engine in engines:
            for key, value in engine.transfer_stats().items():
                totals[key] += value
        return totals

    def bind_registry(self, metrics: MetricsRegistry) -> None:
        """Register this host's live-state gauges on ``metrics``.

        Everything here is a callback gauge — evaluated at scrape time, so
        ``/metrics`` always reports the working set as it is *now*, not as
        it was at the last mutation.  Idempotent per registry (re-binding
        resolves the same gauge objects; callbacks bind on first creation).
        """
        metrics.gauge(
            "repro_serve_engine_cache_size",
            "QueryEngine instances held in the per-version LRU.",
            callback=lambda: len(self._engines),
        )
        metrics.gauge(
            "repro_serve_quarantined_versions",
            "Published versions currently refused after a failed engine build.",
            callback=lambda: len(self._quarantined),
        )
        metrics.gauge(
            "repro_serve_current_version",
            "Registry version of the serving engine (-1 before the first load).",
            callback=lambda: self.current_version if self.current_version is not None else -1,
        )
        for key in ("h2d_calls", "h2d_bytes", "d2h_calls", "d2h_bytes"):
            metrics.gauge(
                "repro_serve_engine_transfers",
                "Host-device traffic summed over live engines (working set).",
                labels={"stat": key},
                callback=lambda key=key: self.transfer_stats()[key],
            )

    def engine(self, version: int | None = None) -> QueryEngine:
        """Resolve the engine for ``version`` (None → the current serving one).

        Explicit versions hit the LRU; misses load from the registry (a
        pinned old version keeps answering even after newer publishes).

        Parameters
        ----------
        version:
            Published registry version to pin, or ``None`` for the live one.

        Returns
        -------
        QueryEngine
            The (possibly cached) engine for that version.

        Raises
        ------
        ServiceError
            404 when the pinned version is not in the registry; 503 (via
            :meth:`refresh`) when the registry is empty.
        """
        if version is None:
            current = self._current
            if current is None:
                return self.refresh()
            return current
        version = int(version)
        with self._lock:
            cached = self._engines.get(version)
            if cached is not None:
                self._engines.move_to_end(version)
                return cached
        try:
            engine = self._build(version)
        except KeyError as exc:
            raise ServiceError(404, str(exc.args[0] if exc.args else exc)) from exc
        self._admit(engine)
        return engine

    def _admit(self, engine: QueryEngine) -> None:
        with self._lock:
            self._engines[engine.version] = engine
            self._engines.move_to_end(engine.version)
            current_version = None if self._current is None else self._current.version
            while len(self._engines) > self.lru_size:
                for candidate in self._engines:
                    if candidate != current_version:
                        del self._engines[candidate]
                        self._meta.pop(candidate, None)
                        break
                else:  # pragma: no cover - only the current engine remains
                    break

    def refresh(self, *, retry_quarantined: bool = False) -> QueryEngine:
        """Adopt the newest loadable version; return the current engine.

        Building the new engine happens *before* the swap, so requests keep
        being answered by the old version for the whole load; the final
        pointer assignment is atomic.

        A version whose engine build fails (corrupt payload, bad manifest)
        is **quarantined** — recorded with its error and skipped by every
        subsequent refresh — and the walk falls back to the next-newest
        published version, so one bad publish never takes serving down.

        Parameters
        ----------
        retry_quarantined:
            Forget previous quarantine verdicts before walking (used by
            ``/admin/reload`` so an operator can retry after repairing a
            payload in place).

        Returns
        -------
        QueryEngine
            The engine serving after the (possible) swap.

        Raises
        ------
        ServiceError
            503 when the registry has no published versions, or when every
            published version fails to load.
        """
        if retry_quarantined:
            with self._lock:
                self._quarantined.clear()
        latest = self.store.latest_version()
        if latest is None:
            raise ServiceError(503, f"registry {self.store.root} has no published versions")
        current = self._current
        candidates = [latest] + [
            v for v in sorted(self.store.versions(), reverse=True) if v != latest
        ]
        for version in candidates:
            with self._lock:
                if version in self._quarantined:
                    continue
            if current is not None and current.version == version:
                return current
            with self._lock:
                cached = self._engines.get(version)
            if cached is not None:
                engine = cached
            else:
                try:
                    engine = self._build(version)
                except Exception as exc:  # noqa: BLE001 - quarantine any build failure
                    with self._lock:
                        self._quarantined[version] = f"{type(exc).__name__}: {exc}"
                    continue
            self._current = engine  # the hot swap: a single reference assignment
            self._admit(engine)  # after the swap, so eviction protects the new version
            return engine
        with self._lock:
            detail = "; ".join(
                f"v{v}: {msg}" for v, msg in sorted(self._quarantined.items())
            )
        raise ServiceError(503, f"every published version failed to load ({detail})")

    def quarantined(self) -> dict[int, str]:
        """Versions refused by :meth:`refresh`, mapped to their build errors."""
        with self._lock:
            return dict(self._quarantined)

    def current_meta(self) -> dict:
        """Publisher-supplied ``meta`` of the serving version ({} before one)."""
        current = self._current
        if current is None:
            return {}
        with self._lock:
            return dict(self._meta.get(current.version, {}))

    @property
    def current_version(self) -> int | None:
        """Version number of the serving engine (None before first refresh)."""
        current = self._current
        return None if current is None else current.version

    def cached_versions(self) -> list[int]:
        """Return the version numbers currently held in the engine LRU."""
        with self._lock:
            return list(self._engines)


class MicroBatcher:
    """Coalesce concurrent awaitable requests into batched kernel calls.

    ``runner`` receives the list of pending payloads and returns one result
    per payload, in order.  A submission flushes immediately once
    ``max_batch`` requests are pending, otherwise after the *current*
    coalescing window elapses.

    The window is adaptive by default: it is zero while the queue is idle
    — a lone request is flushed on the next event-loop tick, adding no
    latency beyond the loop iteration it already pays — and opens toward
    the ``window`` cap as the observed batch depth (an exponentially
    weighted moving average over recent flushes) rises above one.  Depth
    decays the same way, so when the burst ends the window closes again;
    after ``idle_reset`` seconds without a flush the pressure estimate is
    discarded outright.  Even at window zero, requests woken in the same
    event-loop tick still coalesce, because the flush is scheduled behind
    them with ``call_soon``.

    An open window is a *cap*, not a sentence: while it is pending, a
    per-iteration stagnation watch flushes as soon as one event-loop pass
    adds no new submission.  Clients that wait for their response before
    sending the next request (every keep-alive client does) go quiet once
    their in-flight requests are queued — at that point more waiting can
    only add latency, never depth.  The full window is only ever served
    under open-loop pressure, where new requests genuinely keep arriving
    every pass.

    Counters (``batches``, ``requests``, :meth:`stats`) make the
    coalescing observable to health checks and benchmarks.

    Parameters
    ----------
    runner:
        Callable taking the list of pending payloads, returning one result
        per payload in order.  A slot may hold an ``Exception`` instance to
        fail that payload alone without poisoning the rest of the batch.
    window:
        Coalescing window cap in seconds (the fixed window when
        ``adaptive=False``).  Zero disables waiting entirely.
    max_batch:
        Flush immediately once this many requests are pending.
    adaptive:
        When True (default) the wait scales with queue pressure as
        described above; when False every batch waits the full ``window``.
    ramp_depth:
        Average batch depth at which the adaptive window saturates at
        ``window``.  Defaults to ``max(2, max_batch / 4)``.
    idle_reset:
        Seconds without a flush after which the pressure estimate resets
        to idle.
    max_queue:
        Bound on pending submissions.  ``None`` (default) never sheds; a
        submission arriving while ``max_queue`` requests already wait is
        rejected with a 503 :class:`ServiceError` carrying ``Retry-After``
        — before it buffers anything — and counted under ``shed``.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to publish the
        counters into (``repro_serve_batch_*`` families, labelled by
        ``name``).  ``None`` (default) keeps the counters as private
        unregistered metric objects, so standalone batchers stay isolated
        from each other; either way ``batches``/``requests``/``shed``
        read as plain ints.
    name:
        The ``batcher`` label value used when ``metrics`` is given.

    Raises
    ------
    ValueError
        If ``window`` is negative, or ``max_batch``/``max_queue`` below 1.
    """

    def __init__(
        self,
        runner,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        adaptive: bool = True,
        ramp_depth: float | None = None,
        idle_reset: float = 0.25,
        max_queue: int | None = None,
        metrics: MetricsRegistry | None = None,
        name: str = "batch",
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._runner = runner
        self.window = window
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.adaptive = adaptive
        self.ramp_depth = (
            max(2.0, max_batch / 4.0) if ramp_depth is None else float(ramp_depth)
        )
        self.idle_reset = idle_reset
        self._pending: list[tuple[object, asyncio.Future]] = []
        self._timer: "asyncio.TimerHandle | asyncio.Handle | None" = None
        self.name = name
        if metrics is None:
            self._m_batches = Counter()
            self._m_requests = Counter()
            self._m_shed = Counter()
        else:
            labels = {"batcher": name}
            self._m_batches = metrics.counter(
                "repro_serve_batches_total",
                "Batches flushed through the micro-batcher.",
                labels=labels,
            )
            self._m_requests = metrics.counter(
                "repro_serve_batched_requests_total",
                "Requests answered through batched kernel calls.",
                labels=labels,
            )
            self._m_shed = metrics.counter(
                "repro_serve_shed_total",
                "Submissions rejected because the pending queue was full.",
                labels=labels,
            )
            metrics.gauge(
                "repro_serve_batch_queue_depth",
                "Requests currently waiting in the micro-batcher queue.",
                labels=labels,
                callback=lambda: len(self._pending),
            )
            metrics.gauge(
                "repro_serve_batch_ewma_depth",
                "Moving-average flush depth driving the adaptive window.",
                labels=labels,
                callback=lambda: round(self._ewma_depth, 6),
            )
        self.last_batch_size = 0
        self._ewma_depth = 0.0
        self._last_flush = float("-inf")
        self._epoch = 0
        self._watch_count = 0

    @property
    def batches(self) -> int:
        """Batches flushed so far (registry-backed counter)."""
        return self._m_batches.value

    @property
    def requests(self) -> int:
        """Requests answered through batches so far (registry-backed)."""
        return self._m_requests.value

    @property
    def shed(self) -> int:
        """Submissions rejected by the ``max_queue`` bound (registry-backed)."""
        return self._m_shed.value

    def current_window(self) -> float:
        """Return the delay (seconds) the next burst-opening submit waits.

        Zero while idle (pressure at or below one request per flush, or no
        flush within ``idle_reset``); ramps linearly toward the ``window``
        cap as the moving-average batch depth approaches ``ramp_depth``.
        """
        if not self.adaptive:
            return self.window
        if self.window <= 0.0:
            return 0.0
        if time.monotonic() - self._last_flush > self.idle_reset:
            return 0.0
        pressure = self._ewma_depth
        if pressure <= 1.0:
            return 0.0
        fraction = min(1.0, (pressure - 1.0) / max(self.ramp_depth - 1.0, 1.0))
        return self.window * fraction

    async def submit(self, payload):
        """Enqueue ``payload`` and await its slot of the batched result.

        Parameters
        ----------
        payload:
            Opaque request object handed to ``runner`` in arrival order.

        Returns
        -------
        object
            The runner's result for this payload.

        Raises
        ------
        ServiceError
            503 (with ``Retry-After``) when ``max_queue`` submissions are
            already pending — shed before buffering, see ``max_queue``.
        Exception
            Whatever the runner raised for the whole batch, or placed in
            this payload's result slot.
        """
        if self.max_queue is not None and len(self._pending) >= self.max_queue:
            self._m_shed.inc()
            raise ServiceError(
                503,
                f"batch queue full ({self.max_queue} requests pending)",
                retry_after=1,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((payload, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            delay = self.current_window()
            if delay <= 0.0:
                # call_soon, not an inline flush: submissions already woken
                # in this event-loop tick run before the callback and still
                # join the batch — coalescing at zero added latency.
                self._timer = loop.call_soon(self._flush)
            else:
                self._timer = loop.call_later(delay, self._flush)
                if self.adaptive:  # fixed-window mode serves the full window
                    self._watch_count = len(self._pending)
                    loop.call_soon(self._stagnation_check, loop, self._epoch)
        return await future

    def _stagnation_check(self, loop: asyncio.AbstractEventLoop, epoch: int) -> None:
        """Flush an open window early once arrivals cease.

        Re-scheduled with ``call_soon`` every loop pass while the window
        timer is pending: a pass that grows the queue keeps watching, a
        pass that doesn't means every in-flight client has submitted —
        flush now, the rest of the window could only add latency.
        """
        if epoch != self._epoch or self._timer is None:
            return  # that batch already flushed
        if len(self._pending) == self._watch_count:
            self._flush()
        else:
            self._watch_count = len(self._pending)
            loop.call_soon(self._stagnation_check, loop, epoch)

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._epoch += 1  # retires any stagnation watch on this batch
        batch, self._pending = self._pending, []
        if not batch:
            return
        depth = len(batch)
        self._m_batches.inc()
        self._m_requests.inc(depth)
        self.last_batch_size = depth
        # Queue-pressure estimate: EWMA of flush depths.  Half-life of one
        # flush — grows within a couple of bursts, decays as fast once
        # traffic thins back to singles.
        self._ewma_depth = 0.5 * depth + 0.5 * self._ewma_depth
        self._last_flush = time.monotonic()
        try:
            with trace.span("serve.batch", batcher=self.name, size=depth):
                results = self._runner([payload for payload, _ in batch])
        except Exception as exc:
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        # A runner may fail some payloads without poisoning the rest by
        # returning an Exception in that payload's slot.
        for (_, future), result in zip(batch, results):
            if future.done():
                continue
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)

    def stats(self) -> dict:
        """Return a JSON-safe counter snapshot (surfaced under ``/healthz``)."""
        return {
            "batches": self.batches,
            "requests": self.requests,
            "shed": self.shed,
            "queue_depth": len(self._pending),
            "last_batch": self.last_batch_size,
            "ewma_depth": round(self._ewma_depth, 3),
            "window_cap_ms": self.window * 1000.0,
            "current_window_ms": self.current_window() * 1000.0,
        }

    def stats_json(self) -> str:
        """Return :meth:`stats` pre-serialized (the ``/healthz`` hot path)."""
        return (
            f'{{"batches":{self.batches},"requests":{self.requests},'
            f'"shed":{self.shed},'
            f'"queue_depth":{len(self._pending)},'
            f'"last_batch":{self.last_batch_size},'
            f'"ewma_depth":{self._ewma_depth:.3f},'
            f'"window_cap_ms":{self.window * 1000.0:.3f},'
            f'"current_window_ms":{self.current_window() * 1000.0:.3f}}}'
        )


def _json_default(obj):
    """Convert numpy scalars/arrays for ``json.dumps``; reject the rest."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _meta_count(meta: dict, key: str) -> int:
    """Read a counter out of publisher meta, tolerating absent/junk values."""
    try:
        return int(meta.get(key, 0) or 0)
    except (TypeError, ValueError):
        return 0


class ServeApp:
    """The HTTP front: routing, micro-batching, background registry polls.

    Parameters
    ----------
    host:
        The :class:`ModelHost` that resolves versions to engines.
    batch_window:
        Micro-batching window cap in seconds (see :class:`MicroBatcher`).
    max_batch:
        Immediate-flush threshold for both batchers.
    poll_interval:
        Seconds between registry polls for newly published versions;
        0 disables polling (``/admin/reload`` still works).
    adaptive_batching:
        When True (default) the batching window adapts to queue pressure;
        when False every batch waits the full ``batch_window``.
    request_timeout:
        Per-request deadline in seconds for the dispatch (route + kernel)
        phase; expiry answers 503 with ``Retry-After`` and counts under
        ``timeouts``.  ``None``/0 disables the deadline.
    max_body_bytes:
        Reject request bodies longer than this with 413 — decided from the
        ``Content-Length`` header alone, the body is never read.  ``None``
        disables the cap.
    max_queue:
        Per-batcher pending-queue bound (see :class:`MicroBatcher`);
        ``None`` never sheds.
    drain_timeout:
        Upper bound in seconds a graceful drain waits for in-flight
        requests before shutting down anyway.
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` every serve-tier
        counter, gauge, and histogram registers on — also what ``GET
        /metrics`` renders.  ``None`` (default) creates a fresh registry
        per app, keeping concurrently running servers (tests) isolated.
    """

    #: Routes with their own ``repro_serve_request_seconds`` label; anything
    #: else (404s, probes) aggregates under ``path="other"`` so the label
    #: set stays bounded no matter what clients send.
    _ROUTE_PATHS = (
        "/healthz",
        "/metrics",
        "/v1/model",
        "/v1/versions",
        "/v1/similar",
        "/v1/reconstruct",
        "/v1/fold-in",
        "/v1/anomaly",
        "/admin/reload",
    )

    def __init__(
        self,
        host: ModelHost,
        *,
        batch_window: float = 0.002,
        max_batch: int = 64,
        poll_interval: float = 0.0,
        adaptive_batching: bool = True,
        request_timeout: float | None = None,
        max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
        max_queue: int | None = None,
        drain_timeout: float = 10.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_body_bytes is not None and max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {drain_timeout}")
        self.host = host
        self.poll_interval = poll_interval
        self.request_timeout = request_timeout
        self.max_body_bytes = max_body_bytes
        self.drain_timeout = drain_timeout
        self.port: int | None = None
        self._started = time.monotonic()
        self._shutdown: asyncio.Event | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._batcher = MicroBatcher(
            self._run_similar_batch,
            window=batch_window,
            max_batch=max_batch,
            adaptive=adaptive_batching,
            max_queue=max_queue,
            metrics=self.metrics,
            name="similar",
        )
        self._fold_batcher = MicroBatcher(
            self._run_fold_batch,
            window=batch_window,
            max_batch=max_batch,
            adaptive=adaptive_batching,
            max_queue=max_queue,
            metrics=self.metrics,
            name="fold_in",
        )
        self._m_connections = self.metrics.counter(
            "repro_serve_connections_total", "Client connections accepted."
        )
        self._m_requests = self.metrics.counter(
            "repro_serve_requests_total", "HTTP requests served (all routes)."
        )
        self._m_timeouts = self.metrics.counter(
            "repro_serve_timeouts_total", "Requests that exceeded the dispatch deadline."
        )
        self._m_drains = self.metrics.counter(
            "repro_serve_drains_total", "Graceful drains begun (SIGTERM/SIGINT)."
        )
        self._m_request_seconds = {
            path: self.metrics.histogram(
                "repro_serve_request_seconds",
                "Dispatch latency (route + kernel) per endpoint.",
                labels={"path": path},
            )
            for path in self._ROUTE_PATHS
        }
        self._m_request_seconds_other = self.metrics.histogram(
            "repro_serve_request_seconds",
            "Dispatch latency (route + kernel) per endpoint.",
            labels={"path": "other"},
        )
        self.metrics.gauge(
            "repro_serve_active_requests",
            "Requests currently being read, dispatched, or answered.",
            callback=lambda: self._active_requests,
        )
        self.metrics.gauge(
            "repro_serve_draining",
            "1 while a graceful drain is in progress, else 0.",
            callback=lambda: int(self._draining),
        )
        host.bind_registry(self.metrics)
        self._draining = False
        self._active_requests = 0
        self._server: asyncio.AbstractServer | None = None
        self._installed_signals: list[int] = []
        self._model_cache: "tuple[QueryEngine, bytes] | None" = None
        self._open_writers: "set[asyncio.StreamWriter]" = set()

    @property
    def _connections(self) -> int:
        return self._m_connections.value

    @property
    def _requests_served(self) -> int:
        return self._m_requests.value

    @property
    def _timeouts(self) -> int:
        return self._m_timeouts.value

    @property
    def _drains(self) -> int:
        return self._m_drains.value

    # ------------------------------------------------------------------ #
    # kernels behind the batchers
    # ------------------------------------------------------------------ #

    def _run_similar_batch(self, payloads: list[dict]) -> list:
        """One batched ``similar`` kernel call per (engine, mode, k) group.

        Payloads pinned to different versions (or asking different ``k``)
        cannot share a contraction, so they group by engine identity + query
        shape; within a group the whole batch is one kernel call.  A group
        that fails (e.g. a bad index that slipped past request validation)
        gets its exception in its own slots only — co-batched requests from
        other clients are never poisoned by it.
        """
        results: list = [None] * len(payloads)
        groups: dict[tuple, list[int]] = {}
        for i, payload in enumerate(payloads):
            key = (id(payload["engine"]), payload["mode"], payload["k"])
            groups.setdefault(key, []).append(i)
        for members in groups.values():
            engine: QueryEngine = payloads[members[0]]["engine"]
            mode = payloads[members[0]]["mode"]
            k = payloads[members[0]]["k"]
            indices = [payloads[i]["index"] for i in members]
            try:
                with trace.span("serve.kernel", kind="similar", size=len(members)):
                    neighbors, scores = engine.similar(indices, k, mode=mode)
            except Exception as exc:
                for i in members:
                    results[i] = exc
                continue
            for row, i in enumerate(members):
                results[i] = self._similar_body(
                    engine, mode, payloads[i]["index"], neighbors[row], scores[row]
                )
        return results

    def _run_fold_batch(self, payloads: list[dict]) -> list:
        """One ``fold_in_many`` call per (engine, sweeps) group.

        ``/v1/fold-in`` and ``/v1/anomaly`` requests share batches — both
        run the same projection kernel, and each slice draws its Gaussian
        sketch from its own seed, so answers are bitwise independent of
        batch composition.  Sweeps differ per request, so payloads group by
        (engine identity, resolved sweep count); a group that fails gets
        its exception in its own slots only.
        """
        results: list = [None] * len(payloads)
        groups: dict[tuple, list[int]] = {}
        for i, payload in enumerate(payloads):
            engine: QueryEngine = payload["engine"]
            sweeps = payload["sweeps"]
            if sweeps is None:
                sweeps = engine.fold_in_sweeps
            groups.setdefault((id(engine), sweeps), []).append(i)
        for (_, sweeps), members in groups.items():
            engine = payloads[members[0]]["engine"]
            try:
                with trace.span("serve.kernel", kind="fold_in", size=len(members)):
                    folds = engine.fold_in_many(
                        [payloads[i]["slice"] for i in members],
                        seeds=[payloads[i]["seed"] for i in members],
                        sweeps=sweeps,
                    )
            except Exception as exc:
                for i in members:
                    results[i] = exc
                continue
            for i, fold in zip(members, folds):
                try:
                    results[i] = self._fold_body(engine, payloads[i], fold)
                except Exception as exc:  # e.g. a bad neighbors lookup
                    results[i] = exc
        return results

    def _fold_body(self, engine: QueryEngine, payload: dict, fold) -> dict:
        """Render one fold-in/anomaly response from its ``FoldInResult``."""
        if payload["kind"] == "anomaly":
            return {
                "version": engine.version,
                "score": fold.relative_residual,
                "residual_squared": fold.residual_squared,
                "norm_squared": fold.norm_squared,
            }
        response = {
            "version": engine.version,
            "weights": fold.weights.tolist(),
            "relative_residual": fold.relative_residual,
            "residual_squared": fold.residual_squared,
        }
        neighbors = payload["neighbors"]
        if neighbors is not None:
            idx, scores = engine.similar_to(fold.weights, neighbors, mode="slice")
            response["neighbors"] = [
                {"index": int(n), "score": float(s)}
                for n, s in zip(idx[0], scores[0])
            ]
        return response

    @staticmethod
    def _similar_body(engine, mode, index, neighbors, scores) -> dict:
        """Render one similar-query response row."""
        return {
            "version": engine.version,
            "mode": mode,
            "index": int(index),
            "neighbors": [
                {"index": int(n), "score": float(s)}
                for n, s in zip(neighbors, scores)
            ],
        }

    # ------------------------------------------------------------------ #
    # pre-serialized hot responses
    # ------------------------------------------------------------------ #

    def _healthz_body(self) -> bytes:
        """Render ``/healthz`` through a constant format string.

        The health endpoint is the highest-rate route in any deployment
        (load balancers poll it), so it avoids ``json.dumps`` and dict
        building entirely — every value interpolates into a pre-written
        JSON skeleton.
        """
        version = self.host.current_version
        transfers = self.host.transfer_stats()
        meta = self.host.current_meta()
        quarantined = self.host.quarantined()
        quarantined_json = (
            "{}"
            if not quarantined
            else json.dumps({str(k): v for k, v in sorted(quarantined.items())})
        )
        return (
            f'{{"status":"ok",'
            f'"version":{"null" if version is None else version},'
            f'"uptime_seconds":{time.monotonic() - self._started:.3f},'
            f'"connections":{self._connections},'
            f'"requests_served":{self._requests_served},'
            f'"batches":{self._batcher.batches},'
            f'"batched_requests":{self._batcher.requests},'
            f'"batching":{{"similar":{self._batcher.stats_json()},'
            f'"fold_in":{self._fold_batcher.stats_json()}}},'
            f'"faults":{{"timeouts":{self._timeouts},'
            f'"shed":{self._batcher.shed + self._fold_batcher.shed},'
            f'"drains":{self._drains},'
            f'"draining":{"true" if self._draining else "false"},'
            f'"worker_restarts":{_meta_count(meta, "worker_restarts")},'
            f'"checkpoint_resumes":{_meta_count(meta, "checkpoint_resumes")},'
            f'"quarantined":{quarantined_json}}},'
            f'"engine":{{"compute_backend":"{self.host.engine_backend()}",'
            f'"transfers":{{"h2d_calls":{transfers["h2d_calls"]},'
            f'"h2d_bytes":{transfers["h2d_bytes"]},'
            f'"d2h_calls":{transfers["d2h_calls"]},'
            f'"d2h_bytes":{transfers["d2h_bytes"]}}}}}}}'
        ).encode()

    def _model_body(self, engine: QueryEngine) -> bytes:
        """Serve the model card from a per-engine cache of encoded bytes.

        Engine metadata is immutable, so the JSON is serialized once per
        engine object; a hot swap installs a different engine and thereby
        invalidates the cache by identity.
        """
        cached = self._model_cache
        if cached is not None and cached[0] is engine:
            return cached[1]
        body = json.dumps(engine.metadata(), default=_json_default).encode()
        self._model_cache = (engine, body)
        return body

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #

    async def _engine_for(self, body: dict) -> QueryEngine:
        """Resolve the engine a request runs against.

        A pinned version that misses the LRU loads the model from disk and
        precomputes its derived state — that happens on an executor thread,
        like ``refresh``, so one cold pinned query never stalls the event
        loop (and everyone else's requests) behind registry I/O.
        """
        version = _int_field(body, "version")
        if version is None:
            return self.host.engine()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.host.engine, version)

    async def _dispatch(self, method: str, target: str, body: dict):
        """Route one parsed request; return ``(status, payload)``.

        ``payload`` is either a JSON-safe dict or pre-encoded ``bytes``
        (the hot-path responses).  The dispatch is timed into the
        per-endpoint ``repro_serve_request_seconds`` histogram — known
        routes get their own ``path`` label, everything else pools under
        ``"other"`` — and wrapped in a ``serve.request`` span when tracing
        is on (parentage across ``await`` points is best-effort: the event
        loop interleaves tasks on one thread).
        """
        await faults.async_check("serve.dispatch")
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        hist = self._m_request_seconds.get(path, self._m_request_seconds_other)
        t0 = time.perf_counter()
        try:
            with trace.span("serve.request", method=method, path=path):
                return await self._route(method, path, query, body)
        finally:
            hist.observe(time.perf_counter() - t0)

    async def _route(self, method: str, path: str, query: dict, body: dict):
        """The route table behind :meth:`_dispatch`."""
        if method == "GET" and path == "/healthz":
            return 200, self._healthz_body()
        if method == "GET" and path == "/metrics":
            return 200, _PromText(exposition.render(self.metrics).encode())
        if method == "GET" and path == "/v1/model":
            version = query.get("version", [None])[0]
            if version is None:
                return 200, self._model_body(self.host.engine())
            try:
                pinned = int(version)
            except ValueError:
                raise ServiceError(
                    400, f"version must be an integer, got {version!r}"
                ) from None
            engine = await self._engine_for({"version": pinned})
            return 200, engine.metadata()
        if method == "GET" and path == "/v1/versions":
            return 200, {
                "versions": self.host.store.versions(),
                "latest": self.host.store.latest_version(),
                "serving": self.host.current_version,
                "cached": self.host.cached_versions(),
            }
        if method == "POST" and path == "/v1/similar":
            return await self._handle_similar(body)
        if method == "POST" and path == "/v1/reconstruct":
            return await self._handle_reconstruct(body)
        if method == "POST" and path == "/v1/fold-in":
            return await self._handle_fold_in(body, kind="fold-in")
        if method == "POST" and path == "/v1/anomaly":
            return await self._handle_fold_in(body, kind="anomaly")
        if method == "POST" and path == "/admin/reload":
            loop = asyncio.get_running_loop()
            before = self.host.current_version
            engine = await loop.run_in_executor(
                None, lambda: self.host.refresh(retry_quarantined=True)
            )
            return 200, {
                "version": engine.version,
                "swapped": engine.version != before,
                "quarantined": {
                    str(v): msg for v, msg in sorted(self.host.quarantined().items())
                },
            }
        raise ServiceError(404, f"no route for {method} {path}")

    async def _handle_similar(self, body: dict):
        """Answer ``/v1/similar``: batch lists inline, singles via batcher."""
        engine = await self._engine_for(body)
        mode = body.get("mode", "slice")
        if not isinstance(mode, str):
            raise ServiceError(400, f"mode must be a string, got {mode!r}")
        k = _int_field(body, "k", 10, minimum=1)
        if "indices" in body:
            indices = body["indices"]
            if not isinstance(indices, list) or not all(
                isinstance(i, int) and not isinstance(i, bool) for i in indices
            ):
                raise ServiceError(400, "indices must be a list of integers")
            neighbors, scores = engine.similar(indices, k, mode=mode)
            return 200, {
                "version": engine.version,
                "mode": mode,
                "results": [
                    self._similar_body(engine, mode, idx, neighbors[b], scores[b])
                    for b, idx in enumerate(indices)
                ],
            }
        index = _int_field(body, "index")
        if index is None:
            raise ServiceError(400, "similar query needs 'index' or 'indices'")
        # Validate before joining a batch: a bad index must 400 here, not
        # fail the kernel call it would share with other clients' requests.
        n = engine.mode_size(mode)  # also rejects an unknown mode
        if not 0 <= index < n:
            raise ServiceError(
                400, f"index {index} out of range [0, {n}) for mode {mode!r}"
            )
        payload = {"engine": engine, "mode": mode, "k": k, "index": index}
        return 200, await self._batcher.submit(payload)

    async def _handle_reconstruct(self, body: dict):
        """Answer ``/v1/reconstruct`` for one slice (optionally row subset)."""
        engine = await self._engine_for(body)
        k = _int_field(body, "slice")
        if k is None:
            raise ServiceError(400, "reconstruct query needs 'slice' (an index)")
        rows = body.get("rows")
        if rows is not None and (
            not isinstance(rows, list)
            or not all(isinstance(r, int) and not isinstance(r, bool) for r in rows)
        ):
            raise ServiceError(400, "rows must be a list of integers")
        values = engine.reconstruct(k, rows=rows)
        return 200, {
            "version": engine.version,
            "slice": k,
            "rows": rows if rows is not None else "all",
            "shape": list(values.shape),
            "values": values.tolist(),
        }

    @staticmethod
    def _slice_for(body: dict, engine: QueryEngine) -> np.ndarray:
        """Validate and decode the ``slice`` payload of fold-in/anomaly.

        Everything that could fail the shared kernel call — wrong type,
        ragged rows, non-finite values, column-count mismatch — 400s here,
        before the request joins a batch.
        """
        data = body.get("slice")
        if not isinstance(data, list):
            raise ServiceError(400, "'slice' must be a 2-D array (list of rows)")
        try:
            matrix = np.asarray(data, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ServiceError(400, f"'slice' is not numeric: {exc}") from exc
        if matrix.ndim != 2:
            raise ServiceError(
                400, f"'slice' must be 2-D (list of rows), got {matrix.ndim}-D"
            )
        if matrix.shape[1] != engine.n_columns:
            raise ServiceError(
                400,
                f"'slice' has {matrix.shape[1]} columns; "
                f"model has J={engine.n_columns}",
            )
        if not np.isfinite(matrix).all():
            raise ServiceError(400, "'slice' contains NaN or infinite values")
        return matrix

    async def _handle_fold_in(self, body: dict, *, kind: str):
        """Answer ``/v1/fold-in`` / ``/v1/anomaly`` through the fold batcher."""
        engine = await self._engine_for(body)
        payload = {
            "engine": engine,
            "kind": kind,
            "slice": self._slice_for(body, engine),
            "seed": _int_field(body, "seed", 0),
            "sweeps": _int_field(body, "sweeps", minimum=1) if kind == "fold-in" else None,
            "neighbors": (
                _int_field(body, "neighbors", minimum=1) if kind == "fold-in" else None
            ),
        }
        return 200, await self._fold_batcher.submit(payload)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection: a keep-alive loop of requests."""
        self._m_connections.inc()
        self._open_writers.add(writer)
        try:
            while await self._serve_one(reader, writer):
                pass
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            self._open_writers.discard(writer)
            if not writer.is_closing():
                writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Read, dispatch, and answer one request.

        Returns
        -------
        bool
            True when the connection should be kept open for the next
            request (HTTP/1.1 default; HTTP/1.0 only with an explicit
            ``Connection: keep-alive``); False on EOF, close semantics, or
            a framing error that loses the request boundary.
        """
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return False
        self._m_requests.inc()  # pre-dispatch: /healthz counts itself
        keep_alive = True
        status, payload = 500, {"error": "internal error"}
        retry_after: float | None = None
        self._active_requests += 1
        try:
            try:
                try:
                    method, target, proto = request_line.decode("latin-1").split(" ", 2)
                except ValueError:
                    raise ServiceError(400, "malformed request line", close=True) from None
                http11 = proto.strip().upper().startswith("HTTP/1.1")
                content_length = 0
                connection_token = None
                for _ in range(_MAX_HEADER_LINES):
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    name = name.strip().lower()
                    if name == "content-length":
                        try:
                            content_length = int(value.strip())
                        except ValueError:
                            raise ServiceError(400, "bad Content-Length", close=True) from None
                        if content_length < 0:
                            raise ServiceError(400, "bad Content-Length", close=True)
                    elif name == "connection":
                        connection_token = value.strip().lower()
                else:
                    raise ServiceError(400, "too many request headers", close=True)
                keep_alive = (
                    connection_token != "close" if http11 else connection_token == "keep-alive"
                )
                if self.max_body_bytes is not None and content_length > self.max_body_bytes:
                    # Decided from the Content-Length header alone — the body
                    # is never read, so an oversized upload cannot balloon
                    # server memory.  The unread bytes lose the framing,
                    # hence close=True.
                    raise ServiceError(
                        413,
                        f"request body of {content_length} bytes exceeds "
                        f"the {self.max_body_bytes}-byte cap",
                        close=True,
                    )
                body: dict = {}
                if content_length:
                    raw = await reader.readexactly(content_length)
                    try:
                        body = json.loads(raw)
                    except json.JSONDecodeError as exc:
                        raise ServiceError(400, f"request body is not JSON: {exc}") from exc
                    if not isinstance(body, dict):
                        raise ServiceError(400, "request body must be a JSON object")
                dispatch = self._dispatch(method.upper(), target, body)
                if self.request_timeout is not None and self.request_timeout > 0:
                    try:
                        status, payload = await asyncio.wait_for(
                            dispatch, self.request_timeout
                        )
                    except asyncio.TimeoutError:
                        self._m_timeouts.inc()
                        raise ServiceError(
                            503,
                            f"request deadline of {self.request_timeout}s exceeded",
                            retry_after=1,
                        ) from None
                else:
                    status, payload = await dispatch
            except ServiceError as exc:
                status, payload = exc.status, {"error": str(exc)}
                retry_after = exc.retry_after
                keep_alive = keep_alive and not exc.close
            except (ValueError, IndexError, TypeError) as exc:
                status, payload = 400, {"error": str(exc)}
            except (LookupError, FileNotFoundError) as exc:
                status, payload = 404, {"error": str(exc)}
            except (asyncio.IncompleteReadError, ConnectionError):
                return False
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
            if self._draining:
                keep_alive = False  # drain: answer, then shut the connection
            await self._write_response(
                writer, status, payload, keep_alive=keep_alive, retry_after=retry_after
            )
            return keep_alive and not writer.is_closing()
        finally:
            self._active_requests -= 1

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        *,
        keep_alive: bool,
        retry_after: float | None = None,
    ) -> None:
        """Write one response; leave the connection open when keep-alive."""
        content_type = "application/json"
        if isinstance(payload, (bytes, bytearray)):
            if isinstance(payload, _PromText):
                content_type = exposition.CONTENT_TYPE
            body = bytes(payload)
        else:
            try:
                body = json.dumps(payload, default=_json_default).encode()
            except (TypeError, ValueError):  # pragma: no cover - defensive
                status = 500
                body = b'{"error": "response not serializable"}'
        retry_header = (
            "" if retry_after is None else f"Retry-After: {max(1, int(retry_after))}\r\n"
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{retry_header}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
            if not keep_alive:
                writer.close()
                await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ready: "threading.Event | None" = None,
    ) -> None:
        """Serve until :meth:`stop` — the current model loads before binding.

        Parameters
        ----------
        host, port:
            Bind address; port 0 picks a free one (read it from ``.port``).
        ready:
            Optional event set once the socket is bound and the initial
            model is loaded (used by :func:`start_server_in_thread`).
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.host.refresh)
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection, host, port)
        self._server = server
        self.port = server.sockets[0].getsockname()[1]
        self._install_signal_handlers(loop)
        poller = None
        if self.poll_interval > 0:
            poller = asyncio.ensure_future(self._poll_registry())
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            if poller is not None:
                poller.cancel()
            self._remove_signal_handlers(loop)
            self._server = None
            # Kick idle keep-alive connections loose so their handler tasks
            # unwind before the loop closes (they are parked on readline).
            for open_writer in list(self._open_writers):
                if not open_writer.is_closing():
                    open_writer.close()
            for _ in range(20):
                if not self._open_writers:
                    break
                await asyncio.sleep(0.01)

    def _install_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        """Route SIGTERM/SIGINT to a graceful drain where the loop allows it.

        ``add_signal_handler`` only works on a main-thread loop on Unix;
        thread-hosted servers (tests, notebooks) simply skip installation
        and keep the process-default handling.
        """
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (ValueError, NotImplementedError, RuntimeError, OSError):
                continue
            self._installed_signals.append(signum)

    def _remove_signal_handlers(self, loop: asyncio.AbstractEventLoop) -> None:
        """Undo :meth:`_install_signal_handlers` (best effort)."""
        for signum in self._installed_signals:
            try:
                loop.remove_signal_handler(signum)
            except (ValueError, NotImplementedError, RuntimeError, OSError):
                pass
        self._installed_signals = []

    def begin_drain(self) -> None:
        """Start a graceful shutdown: stop accepting, finish in-flight work.

        Idempotent — a second signal while draining does nothing (the
        ``drain_timeout`` bound guarantees eventual exit regardless).  Must
        be called from the event-loop thread (it is the signal-handler
        callback installed by :meth:`run`).
        """
        if self._draining:
            return
        self._draining = True
        self._m_drains.inc()
        asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        """Close the listener, await in-flight requests, then stop the loop.

        New connections are refused immediately; already-accepted requests
        keep running and their responses carry ``Connection: close``.  The
        wait is bounded by ``drain_timeout`` so a wedged handler cannot
        hold shutdown hostage.
        """
        if self._server is not None:
            self._server.close()
        deadline = time.monotonic() + self.drain_timeout
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        self.stop()

    async def _poll_registry(self) -> None:
        """Adopt newly published versions without an explicit reload call."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.poll_interval)
            try:
                await loop.run_in_executor(None, self.host.refresh)
            except Exception:  # registry transiently unreadable: keep serving
                pass

    def stop(self) -> None:
        """Signal :meth:`run` to shut the server down."""
        if self._shutdown is not None:
            self._shutdown.set()


class ServerHandle:
    """A server running on a daemon thread (tests, benchmarks, notebooks).

    Parameters
    ----------
    app:
        The running :class:`ServeApp`.
    thread:
        The daemon thread executing its event loop.
    loop:
        That thread's event loop (used to signal shutdown).
    """

    def __init__(
        self, app: ServeApp, thread: threading.Thread, loop: asyncio.AbstractEventLoop
    ) -> None:
        self.app = app
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        """TCP port the server is bound to."""
        return self.app.port

    @property
    def base_url(self) -> str:
        """Base URL (http://127.0.0.1:port) of the running server."""
        return f"http://127.0.0.1:{self.port}"

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the server and join its thread (bounded by ``timeout``)."""
        self._loop.call_soon_threadsafe(self.app.stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        """Return self; the server is already running."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the server on context exit."""
        self.stop()


def start_server_in_thread(
    registry,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    lru_size: int = 4,
    batch_window: float = 0.002,
    max_batch: int = 64,
    poll_interval: float = 0.0,
    adaptive_batching: bool = True,
    request_timeout: float | None = None,
    max_body_bytes: int | None = DEFAULT_MAX_BODY_BYTES,
    max_queue: int | None = None,
    drain_timeout: float = 10.0,
    engine_kwargs: dict | None = None,
    metrics: MetricsRegistry | None = None,
) -> ServerHandle:
    """Spin up a serving thread over ``registry`` (a path or FactorStore).

    Returns once the socket is bound and the initial model is loaded; the
    handle exposes ``base_url`` and ``stop()`` (also a context manager).

    Parameters
    ----------
    registry:
        A :class:`~repro.serve.store.FactorStore` or a registry directory.
    host, port:
        Bind address; the default port 0 picks a free one.
    lru_size:
        Per-version engine cache size (see :class:`ModelHost`).
    batch_window:
        Micro-batching window cap in seconds.
    max_batch:
        Immediate-flush batch size threshold.
    poll_interval:
        Registry poll cadence in seconds; 0 disables polling.
    adaptive_batching:
        False pins the batching window at ``batch_window`` regardless of
        load (the pre-adaptive behavior; useful for forcing coalescing in
        tests).
    request_timeout:
        Per-request dispatch deadline in seconds (None disables).
    max_body_bytes:
        413 cap on request body size (None disables).
    max_queue:
        Per-batcher shed threshold (None never sheds).
    drain_timeout:
        Bound on the graceful-drain wait for in-flight requests.
    engine_kwargs:
        Extra keyword arguments for every ``QueryEngine`` construction.
    metrics:
        Metrics registry for the app (``None`` creates a fresh one; read
        it back from ``handle.app.metrics``).

    Returns
    -------
    ServerHandle
        Handle with ``base_url``, ``port``, and ``stop()``.

    Raises
    ------
    RuntimeError
        When the server thread fails to bind within the startup timeout.
    """
    store = registry if isinstance(registry, FactorStore) else FactorStore(registry)
    model_host = ModelHost(store, lru_size=lru_size, engine_kwargs=engine_kwargs)
    app = ServeApp(
        model_host,
        batch_window=batch_window,
        max_batch=max_batch,
        poll_interval=poll_interval,
        adaptive_batching=adaptive_batching,
        request_timeout=request_timeout,
        max_body_bytes=max_body_bytes,
        max_queue=max_queue,
        drain_timeout=drain_timeout,
        metrics=metrics,
    )
    ready = threading.Event()
    failure: list[BaseException] = []
    loop = asyncio.new_event_loop()

    def _serve() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(app.run(host, port, ready=ready))
        except BaseException as exc:  # surface startup failures to the caller
            failure.append(exc)
            ready.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_serve, name="repro-serve", daemon=True)
    thread.start()
    ready.wait(timeout=30.0)
    if failure:
        raise failure[0]
    if app.port is None:
        thread_alive = thread.is_alive()
        raise RuntimeError(
            f"server failed to start (thread alive: {thread_alive})"
        )
    return ServerHandle(app, thread, loop)
