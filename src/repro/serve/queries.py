"""Batched query kernels over one fitted PARAFAC2 model snapshot.

The paper's Table 3 application ranks similar stocks by comparing the
learned factors; :class:`QueryEngine` generalizes that to a serving-shaped
API over a frozen :class:`~repro.decomposition.result.Parafac2Result`:

* **Similar entities** — top-``k`` cosine ranking over the normalized rows
  of a factor matrix, in either mode (``"slice"``: rows of ``S``, one per
  slice/stock; ``"feature"``: rows of ``V``, one per column/feature).  A
  batch of queries is one contraction against the cached normalized
  factors, not one per request.
* **Slice reconstruction** — ``X̂k = Qk H Sk Vᵀ`` (whole or row subset).
* **Fold-in** — project an *unseen* slice onto the frozen model: stage-1
  sketch via the existing randomized-SVD kernels, then a few alternating
  ``(Qk, Sk)`` updates against frozen ``H``/``V`` — ``H`` and ``V`` are
  never touched, so serving stays read-only.
* **Anomaly scores** — per-slice relative reconstruction error, for the
  training tensor (Gram trick, no reconstruction materialized) or for an
  unseen slice (fold-in residual).

Determinism contract: on the numpy backend every query kernel is invariant
to batch composition — the similarity scores are computed with a
non-optimized ``einsum`` (fixed per-element reduction order, independent of
how many queries share the call) and the fold-in sketch goes through
:func:`~repro.linalg.kernels.batched_randomized_svd`, which is bitwise
identical to per-slice execution.  The service layer's micro-batching
therefore returns bit-for-bit the same answers as single-request execution.

Device backends (``compute_backend="torch"|"torch-cuda"|"cupy"``) keep the
same shape of guarantee *per backend*: the factors upload once at engine
construction, each query's scores come off one device contraction whose
per-row reduction doesn't depend on batch size, and ranking (stable
argsort, lower-index tiebreak) always runs on the host over the downloaded
scores — so a backend answers itself identically however requests are
batched, while numpy remains the bitwise reference.  Host↔device traffic is
counted (:meth:`QueryEngine.transfer_stats`) and surfaced by the service's
``/healthz``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decomposition.result import Parafac2Result
from repro.linalg.array_module import ArrayModule, get_xp
from repro.linalg.kernels import batched_randomized_svd
from repro.linalg.pinv import solve_gram
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import check_finite_csr, slice_squared_norm
from repro.util.config import DecompositionConfig
from repro.util.validation import check_matrix

#: Factor-row spaces a similarity query can rank over.
SIMILARITY_MODES = ("slice", "feature")


def _as_float64(matrix) -> np.ndarray:
    """C-contiguous float64 working view of a factor matrix.

    Factors may arrive F-ordered (ALS solves return transposes) or
    memmap-backed (registry loads); canonicalizing the layout here makes
    every downstream kernel iterate identically, so an engine over a saved
    model answers bit-for-bit like one over the in-RAM original.  A factor
    that is *already* C-contiguous float64 — the registry's usual memmap
    payload — is returned as-is: the kernels only read it, and skipping the
    copy keeps engine construction from faulting every factor page into
    fresh RAM.  (float32 models still get float64 working copies; that
    upcast is part of the answer contract.)
    """
    if (
        isinstance(matrix, np.ndarray)
        and matrix.dtype == np.float64
        and matrix.flags["C_CONTIGUOUS"]
    ):
        return matrix
    return np.ascontiguousarray(matrix, dtype=np.float64)


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Unit-normalize rows; zero rows stay zero (they match nothing)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.where(norms > 0.0, norms, 1.0)


@dataclass(frozen=True)
class FoldInResult:
    """Projection of one unseen slice onto a frozen model.

    ``weights`` is the slice's new ``S``-row (length ``R``) — its coordinates
    in the model's latent space, directly comparable to the training slices'
    rows of ``S``.  ``residual_squared``/``norm_squared`` give the
    reconstruction quality, and ``Q`` (when requested) the slice's
    column-orthogonal temporal factor.
    """

    weights: np.ndarray
    residual_squared: float
    norm_squared: float
    Q: np.ndarray | None = None

    @property
    def relative_residual(self) -> float:
        """``‖X − X̂‖ / ‖X‖`` — the anomaly score of the slice."""
        if self.norm_squared == 0.0:
            return 0.0
        return float(np.sqrt(self.residual_squared / self.norm_squared))


class QueryEngine:
    """Derived, cached query state over one immutable model snapshot.

    Construction precomputes everything queries share — row-normalized
    factor matrices per mode, the float64 ``H``/``V`` working copies, and
    the Gram matrices the fold-in solves need — so per-request work is one
    contraction plus top-``k`` selection.  Engines are cheap to hold per
    registry version (the service keeps an LRU of them) and safe to share
    across concurrent requests: all state is read-only after ``__init__``.

    Parameters
    ----------
    result:
        The fitted model (typically a memmap-backed registry load).
    config:
        Optional training config; supplies the fold-in sketch parameters
        (oversampling, power iterations) so projections use the same
        Algorithm-1 settings the model was trained with.
    version:
        Registry version tag echoed in :meth:`metadata` (informational).
    fold_in_sweeps:
        Alternating ``(Qk, Sk)`` refinement sweeps per fold-in.
    compute_backend:
        Array library for the bulk kernels.  ``"numpy"`` (default) is the
        bitwise-stable path.  Device backends upload the cached factors
        once here and keep similarity, reconstruction, fold-in and anomaly
        contractions device-resident; answers stay batch-invariant and
        deterministically tie-broken per backend (ranking runs on the host
        over downloaded scores), and host↔device traffic is tallied in
        :meth:`transfer_stats`.
    """

    def __init__(
        self,
        result: Parafac2Result,
        *,
        config: DecompositionConfig | None = None,
        version: int | None = None,
        fold_in_sweeps: int = 8,
        compute_backend: "str | ArrayModule" = "numpy",
    ) -> None:
        if fold_in_sweeps < 1:
            raise ValueError(f"fold_in_sweeps must be >= 1, got {fold_in_sweeps}")
        self.result = result
        self.config = config
        self.version = version
        self.fold_in_sweeps = fold_in_sweeps
        self._xp = get_xp(compute_backend)
        self._oversampling = config.oversampling if config is not None else 5
        self._power_iterations = config.power_iterations if config is not None else 1

        # Cached derived state (read-only after construction).
        self._unit = {
            "slice": _normalize_rows(_as_float64(result.S)),
            "feature": _normalize_rows(_as_float64(result.V)),
        }
        self._H64 = _as_float64(result.H)
        self._V64 = _as_float64(result.V)
        self._VtV = self._V64.T @ self._V64
        self._HtH = self._H64.T @ self._H64

        # Host<->device traffic tally (mutated under queries; plain int
        # bumps, so worst case under races is an undercounted stat, never a
        # wrong answer).
        self._transfers = {
            "h2d_calls": 0, "h2d_bytes": 0, "d2h_calls": 0, "d2h_bytes": 0,
        }
        if not self._xp.is_numpy:
            # One-time residency: every query-shared factor goes up here,
            # so steady-state requests only move query rows and scores.
            self._unit_native = {
                mode: self._up(unit) for mode, unit in self._unit.items()
            }
            self._H64_native = self._up(self._H64)
            self._Ht_native = self._xp.transpose(self._H64_native)
            self._V64_native = self._up(self._V64)
            self._Vt_native = self._xp.transpose(self._V64_native)
            self._VtV_native = self._up(self._VtV)

    # ------------------------------------------------------------------ #
    # host<->device staging
    # ------------------------------------------------------------------ #

    def _up(self, array, dtype=None):
        """Upload a host array, counting the transfer.

        CUDA uploads stage through the module's pinned-buffer path
        (``asarray`` pins and copies ``non_blocking``), so consecutive
        uploads overlap on the stream.
        """
        array = np.ascontiguousarray(array, dtype=dtype)
        self._transfers["h2d_calls"] += 1
        self._transfers["h2d_bytes"] += array.nbytes
        return self._xp.asarray(array)

    def _down(self, native) -> np.ndarray:
        """Download a device array, counting the transfer."""
        out = self._xp.to_numpy(native)
        self._transfers["d2h_calls"] += 1
        self._transfers["d2h_bytes"] += out.nbytes
        return out

    def _up_csr(self, matrix: CsrMatrix):
        """Device handle for a CSR slice; counts the first (caching) upload."""
        cached = matrix.has_native(self._xp)
        handle = matrix.native(self._xp)
        if not cached:
            self._transfers["h2d_calls"] += 1
            self._transfers["h2d_bytes"] += (
                matrix.indptr.nbytes + matrix.indices.nbytes + matrix.data.nbytes
            )
        return handle

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #

    @property
    def compute_backend(self) -> str:
        """Resolved backend name the engine executes on (``xp.name``)."""
        return self._xp.name

    def transfer_stats(self) -> dict:
        """Host↔device traffic since construction (all zero on numpy).

        Keys: ``h2d_calls``/``h2d_bytes`` (uploads — one-time factor
        residency plus per-query row batches) and ``d2h_calls``/
        ``d2h_bytes`` (downloads — score matrices and result factors).
        The service's ``/healthz`` aggregates these across live engines.
        """
        return dict(self._transfers)

    @property
    def rank(self) -> int:
        """Decomposition rank ``R`` of the served model."""
        return self.result.rank

    @property
    def n_slices(self) -> int:
        """Number of slices ``K`` the model was fitted on."""
        return self.result.n_slices

    @property
    def n_columns(self) -> int:
        """Shared column count ``J`` — required width of fold-in slices."""
        return int(self.result.V.shape[0])

    def mode_size(self, mode: str) -> int:
        """Number of rankable entities in ``mode``."""
        return self._unit_rows(mode).shape[0]

    def metadata(self) -> dict:
        """JSON-safe description of the snapshot (the ``/v1/model`` body)."""
        return {
            "version": self.version,
            "method": self.result.method,
            "rank": self.rank,
            "n_slices": self.n_slices,
            "n_columns": self.n_columns,
            "dtype": np.dtype(self.result.H.dtype).name,
            "n_iterations": self.result.n_iterations,
            "converged": bool(self.result.converged),
            "modes": {mode: self.mode_size(mode) for mode in SIMILARITY_MODES},
        }

    def _unit_rows(self, mode: str) -> np.ndarray:
        try:
            return self._unit[mode]
        except KeyError:
            raise ValueError(
                f"unknown similarity mode {mode!r}; "
                f"available: {', '.join(SIMILARITY_MODES)}"
            ) from None

    # ------------------------------------------------------------------ #
    # similar-entity ranking (Table 3 generalized)
    # ------------------------------------------------------------------ #

    def similar(
        self, indices, k: int = 10, *, mode: str = "slice"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` most similar entities for a *batch* of query indices.

        Returns ``(neighbors, scores)`` of shape ``(B, k_eff)`` where
        ``k_eff = min(k, n - 1)`` — the query entity itself is excluded.
        Scores are cosine similarities of the normalized factor rows,
        descending; ties break on the lower index, so rankings are fully
        deterministic.  The whole batch is one contraction against the
        cached normalized factors.
        """
        unit = self._unit_rows(mode)
        n = unit.shape[0]
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if idx.ndim != 1:
            raise ValueError(f"indices must be a 1-D batch, got shape {idx.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= n):
            raise IndexError(
                f"query index out of range [0, {n}) for mode {mode!r}: {idx}"
            )
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        # One batched contraction for all B queries.  Non-optimized einsum
        # reduces each output element over r in a fixed order regardless of
        # B, which is what makes micro-batched answers bitwise identical to
        # single-request ones (a BLAS gemm would not guarantee that).
        if self._xp.is_numpy:
            scores = np.einsum("nr,br->bn", unit, unit[idx])
        else:
            scores = self._device_scores(unit[idx], mode)
        scores[np.arange(idx.size), idx] = -np.inf  # exclude self
        return self._top_k(scores, min(k, n - 1))

    def _device_scores(self, queries: np.ndarray, mode: str) -> np.ndarray:
        """Cosine scores on the device, batch-invariantly.

        The B query rows are gathered on the host and uploaded together,
        but each row's scores come from its *own* ``unit @ q_b`` matvec —
        an identical kernel call whatever B is.  A single ``(n, R) @
        (R, B)`` gemm would be faster but may pick B-dependent blocked
        kernels whose reduction bits differ between a singleton and a
        micro-batch; per-query matvecs keep the backend's answers
        batch-invariant, which the service's batching contract requires.
        Ranking happens on the host over the downloaded scores.
        """
        xp = self._xp
        if queries.shape[0] == 0:  # empty batch, nothing to move
            return np.empty((0, self._unit[mode].shape[0]))
        q = self._up(queries)
        rows = [
            xp.matmul(self._unit_native[mode], q[b])
            for b in range(queries.shape[0])
        ]
        return self._down(xp.stack(rows))

    def similar_to(
        self, vectors, k: int = 10, *, mode: str = "slice"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` entities most similar to external latent ``vectors``.

        ``vectors`` is ``(B, R)`` (or a single length-``R`` vector) in the
        model's latent row space — e.g. :class:`FoldInResult.weights` for
        ``mode="slice"``.  No self-exclusion (the query is not an entity).
        """
        unit = self._unit_rows(mode)
        q = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != self.rank:
            raise ValueError(
                f"vectors must be (B, {self.rank}), got {np.shape(vectors)}"
            )
        if self._xp.is_numpy:
            scores = np.einsum("nr,br->bn", unit, _normalize_rows(q))
        else:
            scores = self._device_scores(_normalize_rows(q), mode)
        return self._top_k(scores, min(k, unit.shape[0]))

    @staticmethod
    def _top_k(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic per-row top-``k``: descending score, index tiebreak.

        A stable sort on the negated scores already breaks ties toward the
        lower index, so one vectorized argsort covers the whole batch.
        """
        k = max(min(k, scores.shape[1]), 0)
        order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
        return order.astype(np.int64), np.take_along_axis(scores, order, axis=1)

    # ------------------------------------------------------------------ #
    # reconstruction
    # ------------------------------------------------------------------ #

    def reconstruct(self, k: int, rows=None) -> np.ndarray:
        """``X̂k = Qk H Sk Vᵀ`` for slice ``k``, optionally a row subset.

        ``rows`` is a sequence of row indices into slice ``k``; the
        contraction touches only those rows of the (memmap-backed) ``Qk``,
        so serving a few rows of a tall slice reads a few pages, not the
        whole factor.
        """
        if not 0 <= k < self.n_slices:
            raise IndexError(f"slice {k} out of range [0, {self.n_slices})")
        Qk = self.result.Q[k]
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
            if rows.size and (rows.min() < 0 or rows.max() >= Qk.shape[0]):
                raise IndexError(
                    f"row index out of range [0, {Qk.shape[0]}) for slice {k}"
                )
            Qk = np.asarray(Qk)[rows]
        xp = self._xp
        middle = np.asarray(Qk) @ (self.result.H * self.result.S[k])
        if xp.is_numpy:
            return xp.to_numpy(
                xp.matmul(xp.asarray(middle), xp.asarray(self.result.V.T))
            )
        # Device: only the Ik×R panel moves up; Vᵀ is already resident.
        return self._down(
            xp.matmul(self._up(middle, dtype=np.float64), self._Vt_native)
        )

    # ------------------------------------------------------------------ #
    # fold-in of unseen slices
    # ------------------------------------------------------------------ #

    def fold_in(
        self, slice_matrix, *, seed: int = 0, sweeps: int | None = None,
        return_q: bool = False,
    ) -> FoldInResult:
        """Project one unseen slice onto the frozen model (see class docs)."""
        return self.fold_in_many(
            [slice_matrix], seeds=[seed], sweeps=sweeps, return_q=return_q
        )[0]

    def fold_in_many(
        self, slices, *, seeds=None, sweeps: int | None = None,
        return_q: bool = False,
    ) -> list[FoldInResult]:
        """Fold in a batch of unseen slices.

        The expensive part — the stage-1 randomized-SVD sketch, ``O(I J R)``
        per slice — runs through
        :func:`~repro.linalg.kernels.batched_randomized_svd`, which stacks
        equal-row-count slices into one batched LAPACK pipeline and is
        bitwise identical to per-slice execution.  Each slice draws its
        Gaussian sketch from its *own* seed (default 0), so a request's
        answer never depends on which other requests shared the batch.  The
        post-sketch refinement is ``O(J R² + R³)`` per slice and runs
        per-item for the same reason.
        """
        mats = []
        for i, Xk in enumerate(slices):
            if isinstance(Xk, CsrMatrix):
                Xk = check_finite_csr(Xk, f"slices[{i}]").astype(np.float64)
            else:
                Xk = check_matrix(Xk, f"slices[{i}]", dtype=np.float64)
            if Xk.shape[1] != self.n_columns:
                raise ValueError(
                    f"slices[{i}] has {Xk.shape[1]} columns; "
                    f"model has J={self.n_columns}"
                )
            mats.append(Xk)
        if not mats:
            return []
        if seeds is None:
            seeds = [0] * len(mats)
        if len(seeds) != len(mats):
            raise ValueError(
                f"slices and seeds must align: {len(mats)} vs {len(seeds)}"
            )
        sweeps = self.fold_in_sweeps if sweeps is None else sweeps
        if sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {sweeps}")

        stage1 = batched_randomized_svd(
            mats,
            self.rank,
            oversampling=self._oversampling,
            power_iterations=self._power_iterations,
            generators=[np.random.default_rng(int(s)) for s in seeds],
            xp=self._xp if not self._xp.is_numpy else None,
        )
        refine = (
            self._refine_fold_in if self._xp.is_numpy
            else self._refine_fold_in_device
        )
        return [
            refine(Xk, svd, sweeps, return_q)
            for Xk, svd in zip(mats, stage1)
        ]

    def _refine_fold_in(self, Xk, svd, sweeps: int, return_q: bool) -> FoldInResult:
        """Alternating ``(Qk, Sk)`` updates on the compressed slice.

        With ``Xk ≈ A G`` from the sketch (``A`` column-orthonormal,
        ``G = Bk Ckᵀ`` — and ``Aᵀ Xk = G`` exactly, by construction of the
        truncated SVD), every update works on ``R×R`` quantities:

        * Procrustes step: ``Qk = A Zk Pkᵀ`` with
          ``Zk Σ Pkᵀ = svd(G V Sk Hᵀ)`` — the same Lemma the DPar2 sweep
          uses, restricted to one slice with ``H, V`` frozen.
        * Weight step: the Lemma-3 normal equations
          ``(Hᵀ QkᵀQk H ∘ VᵀV) w = diag(Hᵀ (Qkᵀ Xk) V)``, with
          ``Qkᵀ Xk = (Zk Pkᵀ)ᵀ G``.  ``QkᵀQk`` deviates from identity only
          when the slice has fewer rows than the model rank, but carrying
          it keeps that degenerate case correct too.
        """
        H, VtV = self._H64, self._VtV
        A = np.asarray(svd.U, dtype=np.float64)
        G = svd.singular_values[:, None].astype(np.float64) * np.asarray(
            svd.V, dtype=np.float64
        ).T  # R_eff x J
        GV = G @ self._V64  # R_eff x R
        w = np.ones(self.rank, dtype=np.float64)
        Zp = None
        for _ in range(sweeps):
            Z, _, Pt = np.linalg.svd((GV * w) @ H.T, full_matrices=False)
            Zp = Z @ Pt  # R_eff x R (columns orthonormal when R_eff >= R)
            C = Zp.T @ GV  # R x R: Qkᵀ Xk V
            g = np.einsum("ir,ir->r", H, C)
            QtQ = Zp.T @ Zp
            gram = (H.T @ (QtQ @ H)) * VtV
            w = solve_gram(gram, g[None, :])[0]
        HS = H * w
        C = Zp.T @ GV
        cross = float(np.einsum("ir,ir->", C, HS))
        QtQ = Zp.T @ Zp
        model_sq = float(np.einsum("ij,ij->", HS.T @ (QtQ @ HS), VtV))
        norm_sq = float(slice_squared_norm(Xk))
        residual_sq = max(norm_sq - 2.0 * cross + model_sq, 0.0)
        return FoldInResult(
            weights=w,
            residual_squared=residual_sq,
            norm_squared=norm_sq,
            Q=(A @ Zp) if return_q else None,
        )

    def _refine_fold_in_device(
        self, Xk, svd, sweeps: int, return_q: bool
    ) -> FoldInResult:
        """Device mirror of :meth:`_refine_fold_in` (see there for the math).

        The ``J``-sized ``G V`` contraction and the per-sweep Procrustes
        products run on the resident factors; only the ``R×R`` Lemma-3
        system comes back each sweep (``solve_gram`` stays on the host —
        it's the deterministic reference solve and the system is tiny), so
        a sweep moves a few hundred bytes, never a factor.
        """
        xp = self._xp
        G = svd.singular_values[:, None].astype(np.float64) * np.asarray(
            svd.V, dtype=np.float64
        ).T  # R_eff x J, host
        GV = xp.matmul(self._up(G), self._V64_native)  # R_eff x R, device
        H, Ht = self._H64_native, self._Ht_native
        w = np.ones(self.rank, dtype=np.float64)
        Zp = None
        for _ in range(sweeps):
            scaled = xp.einsum("ir,r->ir", GV, self._up(w))
            Z, _, Pt = xp.svd(xp.matmul(scaled, Ht), full_matrices=False)
            Zp = xp.matmul(Z, Pt)
            C = xp.matmul(xp.transpose(Zp), GV)
            g = self._down(xp.einsum("ir,ir->r", H, C))
            QtQ = xp.matmul(xp.transpose(Zp), Zp)
            gram = self._down(
                xp.einsum(
                    "ij,ij->ij",
                    xp.matmul(Ht, xp.matmul(QtQ, H)),
                    self._VtV_native,
                )
            )
            w = solve_gram(gram, g[None, :])[0]
        HS = xp.einsum("ir,r->ir", H, self._up(w))
        C = xp.matmul(xp.transpose(Zp), GV)
        cross = xp.to_float(xp.einsum("ir,ir->", C, HS))
        QtQ = xp.matmul(xp.transpose(Zp), Zp)
        model_sq = xp.to_float(
            xp.einsum(
                "ij,ij->",
                xp.matmul(xp.matmul(xp.transpose(HS), QtQ), HS),
                self._VtV_native,
            )
        )
        norm_sq = float(slice_squared_norm(Xk))
        residual_sq = max(norm_sq - 2.0 * cross + model_sq, 0.0)
        Q = None
        if return_q:
            A = np.asarray(svd.U, dtype=np.float64)
            Q = A @ self._down(Zp)
        return FoldInResult(
            weights=w,
            residual_squared=residual_sq,
            norm_squared=norm_sq,
            Q=Q,
        )

    # ------------------------------------------------------------------ #
    # anomaly scores
    # ------------------------------------------------------------------ #

    def anomaly_scores(self, tensor) -> np.ndarray:
        """Per-slice relative reconstruction error against training data.

        ``score_k = ‖Xk − X̂k‖ / ‖Xk‖`` via the Gram expansion — nothing is
        reconstructed, so a whole tensor scores in ``O(Σ Ik R J)``.  Zero
        slices score 0.
        """
        result = self.result
        if tensor.n_slices != self.n_slices:
            raise ValueError(
                f"tensor has {tensor.n_slices} slices, model has {self.n_slices}"
            )
        if tensor.n_columns != self.n_columns:
            raise ValueError(
                f"tensor has J={tensor.n_columns}, model has J={self.n_columns}"
            )
        if not self._xp.is_numpy:
            return self._anomaly_scores_device(tensor)
        scores = np.empty(self.n_slices)
        for k, Xk in enumerate(tensor):
            norm_sq = float(slice_squared_norm(Xk))
            if norm_sq == 0.0:
                scores[k] = 0.0
                continue
            HS = self._H64 * np.asarray(result.S[k], dtype=np.float64)
            Qk = np.asarray(result.Q[k], dtype=np.float64)
            if isinstance(Xk, CsrMatrix):
                QtX = Xk.rmatmul_dense(Qk)
            else:
                QtX = Qk.T @ np.asarray(Xk, dtype=np.float64)
            cross = float(np.einsum("ij,ij->", (QtX @ self._V64), HS))
            # Qkᵀ Qk ≠ I when a streaming model zero-padded a slice whose
            # own rank ran below R — carry it, like the fold-in path does.
            model_sq = float(
                np.einsum("ij,ij->", HS.T @ (Qk.T @ Qk) @ HS, self._VtV)
            )
            residual_sq = max(norm_sq - 2.0 * cross + model_sq, 0.0)
            scores[k] = np.sqrt(residual_sq / norm_sq)
        return scores

    def _anomaly_scores_device(self, tensor) -> np.ndarray:
        """Gram-trick scoring with the slice-sized products on the device.

        Dense slices move up whole (``Qk`` too); CSR slices run their
        ``Qkᵀ Xk`` as a forward SpMM through the cached host transpose
        (see :meth:`~repro.sparse.stacked.StackedCsr.t_matmul_dense` for
        why), with the structure upload cached per slice across calls.
        The ``R×R`` reductions come home and finish in float64 on the
        host, exactly like the numpy path.
        """
        xp = self._xp
        result = self.result
        scores = np.empty(self.n_slices)
        for k, Xk in enumerate(tensor):
            norm_sq = float(slice_squared_norm(Xk))
            if norm_sq == 0.0:
                scores[k] = 0.0
                continue
            HS = self._H64 * np.asarray(result.S[k], dtype=np.float64)
            Qk = self._up(np.asarray(result.Q[k]), dtype=np.float64)
            if isinstance(Xk, CsrMatrix):
                Xk64 = Xk.astype(np.float64)
                # W = Xkᵀ Qk (J × R); then (Qkᵀ Xk) V = Wᵀ V.
                W = xp.spmm(self._up_csr(Xk64.transpose()), Qk)
                QtX_V = xp.matmul(xp.transpose(W), self._V64_native)
            else:
                Xn = self._up(np.asarray(Xk), dtype=np.float64)
                QtX_V = xp.matmul(
                    xp.matmul(xp.transpose(Qk), Xn), self._V64_native
                )
            cross = float(np.einsum("ij,ij->", self._down(QtX_V), HS))
            QtQ = self._down(xp.matmul(xp.transpose(Qk), Qk))
            model_sq = float(
                np.einsum("ij,ij->", HS.T @ QtQ @ HS, self._VtV)
            )
            residual_sq = max(norm_sq - 2.0 * cross + model_sq, 0.0)
            scores[k] = np.sqrt(residual_sq / norm_sq)
        return scores

    def anomaly_score(self, slice_matrix, *, seed: int = 0) -> float:
        """Anomaly score of one *unseen* slice: its fold-in residual."""
        return self.fold_in(slice_matrix, seed=seed).relative_residual
