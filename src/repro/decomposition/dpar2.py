"""DPar2 — the paper's contribution (Algorithm 3).

Pipeline:

1. **Two-stage compression** (Section III-B, :func:`compress_tensor`):
   randomized SVD of every slice ``Xk ≈ Ak Bk Ckᵀ`` (stage 1, parallelized
   with Algorithm 4's greedy partitioning), then randomized SVD of the
   ``J×KR`` concatenation ``M = ∥k (Ck Bk) ≈ D E Fᵀ`` (stage 2).  After
   this, iterations never touch ``Xk`` again: ``Xk ≈ Ak F(k) E Dᵀ``.

2. **Compressed ALS iterations** (Sections III-C–III-E): per slice, an
   ``R×R`` SVD of ``F(k) E Dᵀ V Sk Hᵀ = Zk Σk Pkᵀ`` gives the implicit
   ``Qk = Ak Zk Pkᵀ``; with ``Tk := Pk Zkᵀ F(k)`` the Lemma 1–3 kernels
   produce the three MTTKRPs in ``O(J R² + K R³)`` per sweep.

3. **Compressed convergence criterion** (Section III-E): the variation of
   ``Σk ‖Tk E Dᵀ − H Sk Vᵀ‖²``, evaluated by the Gram trick in
   ``O(J R² + K R³)`` — this equals ``Σk ‖Ak F(k) E Dᵀ − X̂k‖²`` exactly
   because ``D``, ``Zk``, ``Pk`` are orthonormal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.cp_als import normalize_columns
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.linalg.pinv import solve_gram
from repro.linalg.randomized_svd import randomized_svd
from repro.parallel.backends import ExecutionBackend, get_backend
from repro.tensor.irregular import IrregularTensor
from repro.tensor.products import hadamard
from repro.util.config import DecompositionConfig
from repro.util.rng import as_generator, spawn_generators


@dataclass
class CompressedTensor:
    """The preprocessed form ``{Ak}, D, E, {F(k)}`` of an irregular tensor.

    ``Xk ≈ Ak F(k) E Dᵀ`` where ``Ak`` (``Ik×R``) keeps the per-slice left
    subspace, ``D`` (``J×R``) the shared right subspace, ``E`` (length-``R``)
    the stage-2 singular values, and ``F_blocks[k]`` (``R×R``) the ``k``-th
    vertical block of ``F``.
    """

    A: list[np.ndarray]
    D: np.ndarray
    E: np.ndarray
    F_blocks: np.ndarray  # shape (K, R, R)
    seconds: float = 0.0

    def __post_init__(self) -> None:
        R = self.D.shape[1]
        if self.E.shape != (R,):
            raise ValueError(f"E must have shape ({R},), got {self.E.shape}")
        if self.F_blocks.shape != (len(self.A), R, R):
            raise ValueError(
                f"F_blocks must be (K, {R}, {R}), got {self.F_blocks.shape}"
            )
        for k, Ak in enumerate(self.A):
            if Ak.shape[1] != R:
                raise ValueError(f"A[{k}] must have {R} columns, got {Ak.shape}")

    @property
    def rank(self) -> int:
        return self.D.shape[1]

    @property
    def n_slices(self) -> int:
        return len(self.A)

    @property
    def n_columns(self) -> int:
        return self.D.shape[0]

    @property
    def row_counts(self) -> list[int]:
        return [Ak.shape[0] for Ak in self.A]

    @property
    def nbytes(self) -> int:
        """Size of the preprocessed data — what Fig. 10 reports."""
        return (
            sum(Ak.nbytes for Ak in self.A)
            + self.D.nbytes
            + self.E.nbytes
            + self.F_blocks.nbytes
        )

    def reconstruct_slice(self, k: int) -> np.ndarray:
        """Materialize ``X̃k = Ak F(k) E Dᵀ`` (testing/diagnostics only)."""
        return self.A[k] @ (self.F_blocks[k] * self.E) @ self.D.T

    def compression_ratio(self, tensor: IrregularTensor) -> float:
        """Input bytes divided by preprocessed bytes (Fig. 10's ratio)."""
        return tensor.nbytes / self.nbytes


def _compress_slice_task(item, *, rank, oversampling, power_iterations):
    """Stage-1 kernel: one randomized SVD per ``(slice, generator)`` pair.

    Module-level (rather than a closure) so the process backend can pickle
    it; the slice itself travels through shared memory, not the pickle.
    """
    Xk, rng = item
    return randomized_svd(
        Xk,
        rank,
        oversampling=oversampling,
        power_iterations=power_iterations,
        random_state=rng,
    )


def compress_tensor(
    tensor: IrregularTensor,
    rank: int,
    *,
    oversampling: int = 5,
    power_iterations: int = 1,
    n_threads: int = 1,
    random_state=None,
    use_greedy_partition: bool = True,
    backend: "str | ExecutionBackend" = "thread",
) -> CompressedTensor:
    """Two-stage randomized-SVD compression (Algorithm 3, lines 2–6).

    Stage 1 runs one randomized SVD per slice, distributed over workers of
    the chosen ``backend`` by Algorithm 4's greedy number partitioning keyed
    on row counts (set ``use_greedy_partition=False`` for the naive
    allocation, used by the partitioning ablation).  Stage 2 compresses the
    ``J×KR`` concatenation of the ``Ck Bk`` products.

    Because stage 1 is the only place the raw slices are read, a tensor
    backed by an on-disk :class:`~repro.tensor.mmap_store.MmapSliceStore`
    streams through here one slice at a time — nothing requires the whole
    tensor in RAM.  ``backend`` accepts a name (a backend is created and
    closed around the call) or a live instance (reused, left open).
    """
    if not isinstance(tensor, IrregularTensor):
        tensor = IrregularTensor(tensor)
    R = min(rank, tensor.n_columns, min(tensor.row_counts))
    start = time.perf_counter()

    owned = not isinstance(backend, ExecutionBackend)
    engine = get_backend(backend, n_threads)

    # Stage 1: per-slice randomized SVD, one private RNG per slice so the
    # result is independent of the worker schedule (and of the backend).
    generators = spawn_generators(random_state, tensor.n_slices)
    compress_slice = partial(
        _compress_slice_task,
        rank=R,
        oversampling=oversampling,
        power_iterations=power_iterations,
    )

    items = list(zip(tensor.slices, generators))
    try:
        if use_greedy_partition:
            stage1 = engine.map_partitioned(
                compress_slice, items, weights=tensor.row_counts
            )
        else:
            stage1 = engine.map(compress_slice, items)
    finally:
        if owned:
            engine.close()

    # Stage 2: M = ∥k (Ck Bk) ∈ R^{J x KR}, randomized SVD at rank R.
    M = np.concatenate(
        [svd.V * svd.singular_values for svd in stage1], axis=1
    )
    stage2 = randomized_svd(
        M,
        R,
        oversampling=oversampling,
        power_iterations=power_iterations,
        random_state=as_generator(random_state),
    )
    # F is KR x R; its k-th vertical block (R x R) satisfies Bk Ckᵀ ≈ F(k) E Dᵀ.
    F_blocks = stage2.V.reshape(tensor.n_slices, R, stage2.V.shape[1])

    return CompressedTensor(
        A=[svd.U for svd in stage1],
        D=stage2.U,
        E=stage2.singular_values,
        F_blocks=F_blocks,
        seconds=time.perf_counter() - start,
    )


def _polar_stack_task(stack: np.ndarray) -> np.ndarray:
    """Polar factors ``Zk Pkᵀ`` for one chunk of stacked small matrices.

    The thin SVD keeps this correct when the stack is rectangular
    ``(m, Rc, R)`` with ``Rc > R`` — a precomputed compression of higher
    rank than the target (its extra directions are simply truncated).
    """
    Z, _, Pt = np.linalg.svd(stack, full_matrices=False)
    return Z @ Pt


def _batched_polar(
    matrices: np.ndarray,
    n_threads: int,
    backend: "str | ExecutionBackend" = "thread",
) -> np.ndarray:
    """``Zk Pkᵀ`` and ``Tk``-precursor SVDs for a stack of ``R×R`` matrices.

    Returns the stack ``Zk @ Pkᵀ`` (shape ``(K, R, R)``).  Large stacks are
    chunked evenly across the backend's workers (the "uniform allocation" of
    Section III-F: the per-slice work no longer depends on ``Ik``); small
    stacks go through one LAPACK batched-SVD call, whatever the backend,
    because dispatch would cost more than the work.
    """
    K = matrices.shape[0]
    engine = get_backend(backend, n_threads)
    owned = not isinstance(backend, ExecutionBackend)
    if engine.n_workers <= 1 or K < 4 * engine.n_workers:
        if owned:
            engine.close()
        return _polar_stack_task(matrices)

    chunks = np.array_split(matrices, engine.n_workers)
    try:
        return np.concatenate(engine.map(_polar_stack_task, chunks))
    finally:
        if owned:
            engine.close()


def dpar2(
    tensor: IrregularTensor,
    config: DecompositionConfig | None = None,
    *,
    compressed: CompressedTensor | None = None,
    use_greedy_partition: bool = True,
    exact_convergence: bool = False,
    **overrides,
) -> Parafac2Result:
    """Fit PARAFAC2 with DPar2 (Algorithm 3).

    Parameters
    ----------
    tensor:
        The irregular input ``{Xk}``.
    config:
        Shared hyper-parameters; keyword overrides apply on top.
    compressed:
        A precomputed :func:`compress_tensor` result, letting callers reuse
        one compression across ranks/sweeps (its rank must not be below the
        target rank).
    use_greedy_partition:
        Algorithm-4 load balancing for stage-1 compression (ablation knob).
    exact_convergence:
        When True, evaluate the true reconstruction error against the raw
        slices each sweep instead of the compressed criterion — the
        convergence ablation from DESIGN.md §6.

    Returns
    -------
    Parafac2Result
        ``preprocess_seconds`` is the two-stage compression time,
        ``preprocessed_bytes`` the size of ``{Ak}, D, E, F`` (Fig. 9(a) and
        Fig. 10 inputs).

    Notes
    -----
    **Execution backend.**  ``config.backend`` selects how slice-parallel
    stages run: ``"serial"``, ``"thread"`` (default), or ``"process"``
    (workers fed through ``multiprocessing.shared_memory``); ``config.n_threads``
    sets the worker count.  One backend instance is shared by stage-1
    compression and every sweep's batched polar SVDs, so a process pool is
    forked once per call.  For a fixed ``random_state`` all backends return
    identical factors — per-slice spawned RNGs make the result independent
    of the schedule.

    **Out of core.**  The raw slices are only read during stage-1
    compression, so a tensor built with
    :meth:`IrregularTensor.from_store <repro.tensor.irregular.IrregularTensor.from_store>`
    over an on-disk :class:`~repro.tensor.mmap_store.MmapSliceStore` streams
    from disk slice by slice; iterations then run purely on the compressed
    representation.  (``exact_convergence=True`` re-reads raw slices every
    sweep and defeats the purpose.)

    **Zero sweeps.**  ``max_iterations=0`` is allowed and returns the
    compressed tensor's subspaces with the random factor initialization —
    useful for timing or warm-start experiments.
    """
    config = (config or DecompositionConfig()).with_(**overrides)
    if not isinstance(tensor, IrregularTensor):
        tensor = IrregularTensor(tensor)
    R = min(config.rank, tensor.n_columns, min(tensor.row_counts))

    # One backend instance serves compression and every sweep, so a process
    # pool pays its fork cost once per dpar2() call.
    with get_backend(config.backend, config.n_threads) as engine:
        if compressed is None:
            compressed = compress_tensor(
                tensor,
                R,
                oversampling=config.oversampling,
                power_iterations=config.power_iterations,
                random_state=config.random_state,
                use_greedy_partition=use_greedy_partition,
                backend=engine,
            )
        elif compressed.rank < R:
            raise ValueError(
                f"precomputed compression has rank {compressed.rank} < target {R}"
            )
        return _iterate(
            tensor, config, compressed, engine, R, exact_convergence
        )


def _iterate(
    tensor: IrregularTensor,
    config: DecompositionConfig,
    compressed: CompressedTensor,
    engine: ExecutionBackend,
    R: int,
    exact_convergence: bool,
) -> Parafac2Result:
    """Compressed ALS sweeps (Alg. 3, lines 7–24) on a live backend."""
    D = compressed.D  # J x R
    E = compressed.E  # R
    F = compressed.F_blocks  # K x R x R
    K = compressed.n_slices

    init = initialize_factors(tensor.n_columns, K, R, config.random_state)
    H, V, W = init.H, init.V, init.W

    # ‖Tk E‖² is needed by the compressed criterion; Tk = Pk Zkᵀ F(k) has
    # orthonormal-factor left part, so ‖Tk E‖ = ‖F(k) E‖ — constant across
    # iterations and precomputable.
    FE = F * E  # K x R x R, each F(k) @ diag(E)
    data_term = float(np.sum(FE * FE))
    slice_norms_sq = (
        np.array([float(np.sum(Xk * Xk)) for Xk in tensor])
        if exact_convergence
        else None
    )

    monitor = ConvergenceMonitor(config.tolerance)
    history: list[IterationRecord] = []
    converged = False
    iteration = 0
    # ``polar`` must be bound even when the sweep loop never runs
    # (``max_iterations=0``): the Qk materialization below reads it.
    polar = None

    start = time.perf_counter()
    for iteration in range(1, config.max_iterations + 1):
        sweep_start = time.perf_counter()

        # --- per-slice R x R SVDs (Alg. 3, lines 8-10) ------------------ #
        EDtV = (D.T @ V) * E[:, None]  # R x R: E Dᵀ V
        # small_k = F(k) E Dᵀ V Sk Hᵀ, stacked over k
        small = np.einsum("kij,jr,kr,sr->kis", F, EDtV, W, H, optimize=True)
        polar = _batched_polar(small, config.n_threads, backend=engine)  # Zk Pkᵀ
        # Tk = Pk Zkᵀ F(k) = (Zk Pkᵀ)ᵀ F(k)
        T = np.einsum("kji,kjs->kis", polar, F, optimize=True)

        # --- Lemma 1: update H ------------------------------------------ #
        G1 = np.einsum("kr,kij,jr->ir", W, T, EDtV, optimize=True)
        H = solve_gram(hadamard(W.T @ W, V.T @ V), G1)
        H, _ = normalize_columns(H)

        # --- Lemma 2: update V ------------------------------------------ #
        inner = np.einsum("kr,kji,jr->ir", W, T, H, optimize=True)
        G2 = (D * E) @ inner
        V = solve_gram(hadamard(W.T @ W, H.T @ H), G2)
        V, _ = normalize_columns(V)

        # --- Lemma 3: update W ------------------------------------------ #
        EDtV = (D.T @ V) * E[:, None]  # recompute with the new V
        G3 = np.einsum("ir,kij,jr->kr", H, T, EDtV, optimize=True)
        W = solve_gram(hadamard(V.T @ V, H.T @ H), G3)

        # --- convergence criterion -------------------------------------- #
        if exact_convergence:
            error_sq = _exact_error(tensor, slice_norms_sq, compressed, polar, H, V, W)
        else:
            error_sq = _compressed_error(T, E, data_term, D, H, V, W)
        history.append(
            IterationRecord(iteration, error_sq, time.perf_counter() - sweep_start)
        )
        if monitor.update(error_sq):
            converged = True
            break
    iterate_seconds = time.perf_counter() - start

    # Materialize Qk = Ak Zk Pkᵀ for the returned model (Alg. 3, line 25).
    # With zero sweeps there is no polar factor yet; Qk = Ak, truncated to
    # the target rank when the compression has more (rectangular eye).
    Z_Pt = (
        polar
        if polar is not None
        else np.tile(np.eye(compressed.rank, R), (K, 1, 1))
    )
    Q = [compressed.A[k] @ Z_Pt[k] for k in range(K)]

    return Parafac2Result(
        Q=Q,
        H=H,
        S=W,
        V=V,
        method="dpar2",
        n_iterations=iteration,
        converged=converged,
        preprocess_seconds=compressed.seconds,
        iterate_seconds=iterate_seconds,
        preprocessed_bytes=compressed.nbytes,
        history=history,
    )


def _compressed_error(
    T: np.ndarray,
    E: np.ndarray,
    data_term: float,
    D: np.ndarray,
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
) -> float:
    """``Σk ‖Tk E Dᵀ − H Sk Vᵀ‖²`` via the Gram trick (O(JR² + KR³)).

    ``‖Tk E Dᵀ‖² = ‖F(k) E‖²`` (precomputed ``data_term``),
    ``⟨Tk E Dᵀ, H Sk Vᵀ⟩ = Σ (Tk E) ∗ ((H Sk)(Vᵀ D))``, and
    ``‖H Sk Vᵀ‖² = Σ ((H Sk)ᵀ(H Sk)) ∗ VᵀV``.
    """
    VtD = V.T @ D  # R x R, O(J R^2), shared across slices
    VtV = V.T @ V
    TE = T * E  # K x R x R
    # cross_k = sum( (Tk E) * ((H * W[k]) @ VtD) )
    HS = H[None, :, :] * W[:, None, :]  # K x R x R
    cross = float(np.einsum("kij,kil,lj->", TE, HS, VtD, optimize=True))
    model = float(
        np.einsum("kli,klj,ij->", HS, HS, VtV, optimize=True)
    )
    return max(data_term - 2.0 * cross + model, 0.0)


def _exact_error(
    tensor: IrregularTensor,
    slice_norms_sq: np.ndarray,
    compressed: CompressedTensor,
    polar: np.ndarray,
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
) -> float:
    """True ``Σk ‖Xk − Qk H Sk Vᵀ‖²`` (ablation path; touches raw slices)."""
    VtV = V.T @ V
    total = 0.0
    for k, Xk in enumerate(tensor):
        Qk = compressed.A[k] @ polar[k]
        M_left = H * W[k]
        cross = float(np.sum(((Qk.T @ Xk) @ V) * M_left))
        model_sq = float(np.sum((M_left.T @ M_left) * VtV))
        total += float(slice_norms_sq[k]) - 2.0 * cross + model_sq
    return max(total, 0.0)
