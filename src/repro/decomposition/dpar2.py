"""DPar2 — the paper's contribution (Algorithm 3).

Pipeline:

1. **Two-stage compression** (Section III-B, :func:`compress_tensor`):
   randomized SVD of every slice ``Xk ≈ Ak Bk Ckᵀ`` (stage 1, parallelized
   with Algorithm 4's greedy partitioning), then randomized SVD of the
   ``J×KR`` concatenation ``M = ∥k (Ck Bk) ≈ D E Fᵀ`` (stage 2).  After
   this, iterations never touch ``Xk`` again: ``Xk ≈ Ak F(k) E Dᵀ``.

2. **Compressed ALS iterations** (Sections III-C–III-E): per slice, an
   ``R×R`` SVD of ``F(k) E Dᵀ V Sk Hᵀ = Zk Σk Pkᵀ`` gives the implicit
   ``Qk = Ak Zk Pkᵀ``; with ``Tk := Pk Zkᵀ F(k)`` the Lemma 1–3 kernels
   produce the three MTTKRPs in ``O(J R² + K R³)`` per sweep.

3. **Compressed convergence criterion** (Section III-E): the variation of
   ``Σk ‖Tk E Dᵀ − H Sk Vᵀ‖²``, evaluated by the Gram trick in
   ``O(J R² + K R³)`` — this equals ``Σk ‖Ak F(k) E Dᵀ − X̂k‖²`` exactly
   because ``D``, ``Zk``, ``Pk`` are orthonormal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.cp_als import normalize_columns
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.linalg.array_module import ArrayModule, get_xp
from repro.linalg.kernels import (
    acquire_sweep_workspace,
    batched_randomized_svd,
    batched_stacked_matmul,
    release_sweep_workspace,
)
from repro.linalg.pinv import solve_gram
from repro.linalg.randomized_svd import randomized_svd
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.parallel.backends import ExecutionBackend, get_backend, in_process_backend
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import slice_squared_norm
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig
from repro.util.rng import as_generator, spawn_generators

#: Above this slice height the per-slice (thread-parallel) stage-1 path
#: beats single-stream batching when multiple workers are available: the
#: LAPACK calls are then large enough that dispatch overhead no longer
#: dominates, while worker threads still share the slices zero-copy.
_BATCH_MAX_ROWS = 256


@dataclass
class CompressedTensor:
    """The preprocessed form ``{Ak}, D, E, {F(k)}`` of an irregular tensor.

    ``Xk ≈ Ak F(k) E Dᵀ`` where ``Ak`` (``Ik×R``) keeps the per-slice left
    subspace, ``D`` (``J×R``) the shared right subspace, ``E`` (length-``R``)
    the stage-2 singular values, and ``F_blocks[k]`` (``R×R``) the ``k``-th
    vertical block of ``F``.
    """

    A: list[np.ndarray]
    D: np.ndarray
    E: np.ndarray
    F_blocks: np.ndarray  # shape (K, R, R)
    seconds: float = 0.0

    def __post_init__(self) -> None:
        R = self.D.shape[1]
        if self.E.shape != (R,):
            raise ValueError(f"E must have shape ({R},), got {self.E.shape}")
        if self.F_blocks.shape != (len(self.A), R, R):
            raise ValueError(
                f"F_blocks must be (K, {R}, {R}), got {self.F_blocks.shape}"
            )
        for k, Ak in enumerate(self.A):
            if Ak.shape[1] != R:
                raise ValueError(f"A[{k}] must have {R} columns, got {Ak.shape}")

    @property
    def rank(self) -> int:
        return self.D.shape[1]

    @property
    def n_slices(self) -> int:
        return len(self.A)

    @property
    def n_columns(self) -> int:
        return self.D.shape[0]

    @property
    def row_counts(self) -> list[int]:
        return [Ak.shape[0] for Ak in self.A]

    @property
    def nbytes(self) -> int:
        """Size of the preprocessed data — what Fig. 10 reports."""
        return (
            sum(Ak.nbytes for Ak in self.A)
            + self.D.nbytes
            + self.E.nbytes
            + self.F_blocks.nbytes
        )

    def reconstruct_slice(self, k: int) -> np.ndarray:
        """Materialize ``X̃k = Ak F(k) E Dᵀ`` (testing/diagnostics only)."""
        return self.A[k] @ (self.F_blocks[k] * self.E) @ self.D.T

    def compression_ratio(self, tensor: IrregularTensor) -> float:
        """Input bytes divided by preprocessed bytes (Fig. 10's ratio)."""
        return tensor.nbytes / self.nbytes


def _compress_slice_task(item, *, rank, oversampling, power_iterations):
    """Stage-1 kernel: one randomized SVD per ``(slice, generator)`` pair.

    Module-level (rather than a closure) so the process backend can pickle
    it; the slice itself travels through shared memory, not the pickle.
    """
    Xk, rng = item
    return randomized_svd(
        Xk,
        rank,
        oversampling=oversampling,
        power_iterations=power_iterations,
        random_state=rng,
    )


def _use_batched_stage1(
    stage1_batching: str,
    engine: ExecutionBackend,
    tensor: IrregularTensor,
    use_greedy_partition: bool,
    xp: ArrayModule,
) -> bool:
    """Decide between the stacked-kernel and per-slice stage-1 paths.

    ``"auto"`` batches when it cannot lose: the backend runs in-process
    (stacking in the parent is free), the slices are in RAM (stacking a
    memory-mapped store would defeat out-of-core streaming), and either
    there is a single worker or the slices sit in the many-small regime
    where Python/LAPACK dispatch — not FLOPs — dominates.  Explicitly
    disabling greedy partitioning (the Algorithm-4 ablation) keeps the
    per-slice path so the ablation still measures what it claims to.
    Either path produces bitwise-identical results; this is purely a
    performance routing decision.

    A non-numpy ``xp`` always batches: device throughput comes from big
    stacked launches, and worker dispatch of per-slice device calls would
    only serialize on the stream anyway.  Sparse (CSR) tensors also
    default to batching: their stage-1 cost is ``O(nnz·R)``, so Python
    dispatch — not FLOPs — dominates at any slice height, and the stacked
    SpMM path sketches a whole row-count bucket per call.  (Stacking a
    sparse bucket copies only its ``nnz``-sized arrays, so the
    memory-mapped exclusion below does not apply to CSR slices.)
    """
    if not xp.is_numpy:
        if stage1_batching == "per-slice":
            raise ValueError(
                "stage1_batching='per-slice' is a host-dispatch ablation and "
                f"cannot run on compute backend {xp.name!r}; "
                "use compute_backend='numpy' for that measurement"
            )
        return True
    if stage1_batching == "per-slice":
        return False
    if stage1_batching == "batched":
        return True
    if stage1_batching != "auto":
        raise ValueError(
            "stage1_batching must be 'auto', 'batched', or 'per-slice'; "
            f"got {stage1_batching!r}"
        )
    dense_memmap = any(isinstance(Xk, np.memmap) for Xk in tensor.slices)
    if tensor.has_sparse_slices:
        # Sparse buckets batch for free, but a *mixed* tensor whose dense
        # slices are memory-mapped must keep the per-slice streaming path:
        # batching would copy each dense bucket into an in-RAM stack.
        return not dense_memmap
    if not engine.in_process or not use_greedy_partition:
        return False
    if dense_memmap:
        return False
    return engine.n_workers == 1 or tensor.max_rows <= _BATCH_MAX_ROWS


def compress_tensor(
    tensor: IrregularTensor,
    rank: int,
    *,
    oversampling: int = 5,
    power_iterations: int = 1,
    n_threads: int = 1,
    random_state=None,
    use_greedy_partition: bool = True,
    backend: "str | ExecutionBackend" = "thread",
    stage1_batching: str = "auto",
    stage1_pad_ratio: float = 0.0,
    compute_backend: "str | ArrayModule" = "numpy",
) -> CompressedTensor:
    """Two-stage randomized-SVD compression (Algorithm 3, lines 2–6).

    Stage 1 runs one randomized SVD per slice.  For in-RAM tensors on an
    in-process backend the slices are grouped into equal-row-count buckets
    and the whole Algorithm-1 pipeline runs as stacked 3-D LAPACK calls
    (:func:`~repro.linalg.kernels.batched_randomized_svd`) — identical
    results, no per-slice Python dispatch.  Otherwise (process backend,
    memory-mapped slices, or ``stage1_batching="per-slice"``) each slice is
    dispatched over the ``backend``'s workers with Algorithm 4's greedy
    number partitioning keyed on row counts (``use_greedy_partition=False``
    selects the naive allocation, used by the partitioning ablation).
    ``stage1_pad_ratio > 0`` lets the batched path zero-pad nearly-equal
    row counts into shared buckets (value-identical, not bitwise).  Stage 2
    compresses the ``J×KR`` concatenation of the ``Ck Bk`` products.

    Because stage 1 is the only place the raw slices are read, a tensor
    backed by an on-disk :class:`~repro.tensor.mmap_store.MmapSliceStore`
    streams through here one slice at a time — nothing requires the whole
    tensor in RAM.  ``backend`` accepts a name (a backend is created and
    closed around the call) or a live instance (reused, left open).

    The compression runs in the tensor's dtype: float32 slices yield a
    float32 :class:`CompressedTensor` at half the memory traffic.

    Tensors holding CSR slices (see
    :meth:`IrregularTensor.sparsify <repro.tensor.irregular.IrregularTensor.sparsify>`)
    take the sparse fast path: stage 1 sketches each row-count bucket
    through batched SpMM (``O(nnz·R)`` work, only the ``(R+s)``-column
    panels dense) and the raw slices are never densified.  The compressed
    output is identical in structure — iterations downstream are oblivious
    to how stage 1 read the data.  On a device backend the sparse path
    composes too: each bucket's CSR structure uploads once and the sketch
    panels stay device-resident (see
    :func:`~repro.linalg.kernels.batched_randomized_svd`).

    ``compute_backend`` selects the array library the randomized-SVD
    kernels run on (``"numpy"`` default — bitwise-stable; ``"torch"`` /
    ``"torch-cuda"`` / ``"cupy"``).  Device backends stack each row bucket
    on-device once (slices move through
    :meth:`IrregularTensor.to_backend`'s per-backend cache), force the
    batched in-process stage-1 path, and refuse memory-mapped tensors —
    out-of-core streaming and device residency are mutually exclusive.
    """
    if not isinstance(tensor, IrregularTensor):
        tensor = IrregularTensor(tensor)
    xp = get_xp(compute_backend)
    if not xp.is_numpy and any(
        isinstance(Xk, np.memmap) for Xk in tensor.slices
    ):
        raise ValueError(
            "out-of-core (memory-mapped) tensors cannot be compressed on "
            f"compute backend {xp.name!r}: paging the store through the "
            "device defeats streaming; use compute_backend='numpy'"
        )
    R = min(rank, tensor.n_columns, min(tensor.row_counts))
    start = time.perf_counter()

    owned = not isinstance(backend, ExecutionBackend)
    engine = get_backend(backend, n_threads)
    if not xp.is_numpy:
        engine = in_process_backend(engine)

    # Stage 1: per-slice randomized SVD, one private RNG per slice so the
    # result is independent of the worker schedule (and of the backend,
    # and of whether slices were dispatched stacked or one by one).
    generators = spawn_generators(random_state, tensor.n_slices)
    try:
        if _use_batched_stage1(
            stage1_batching, engine, tensor, use_greedy_partition, xp
        ):
            stage1 = batched_randomized_svd(
                tensor.slices,
                R,
                oversampling=oversampling,
                power_iterations=power_iterations,
                generators=generators,
                max_pad_ratio=stage1_pad_ratio,
                xp=xp,
                native_slices=None if xp.is_numpy else tensor.to_backend(xp),
            )
        else:
            compress_slice = partial(
                _compress_slice_task,
                rank=R,
                oversampling=oversampling,
                power_iterations=power_iterations,
            )
            items = list(zip(tensor.slices, generators))
            if use_greedy_partition:
                stage1 = engine.map_partitioned(
                    compress_slice, items, weights=tensor.row_counts
                )
            else:
                stage1 = engine.map(compress_slice, items)
    finally:
        if owned:
            engine.close()

    # Stage 2: M = ∥k (Ck Bk) ∈ R^{J x KR}, randomized SVD at rank R.  The
    # K products are written straight into one preallocated array instead
    # of concatenating K temporaries.
    M = np.empty((tensor.n_columns, tensor.n_slices * R), dtype=tensor.dtype)
    for k, svd in enumerate(stage1):
        np.multiply(svd.V, svd.singular_values, out=M[:, k * R : (k + 1) * R])
    stage2 = randomized_svd(
        M,
        R,
        oversampling=oversampling,
        power_iterations=power_iterations,
        random_state=as_generator(random_state),
        xp=xp,
    )
    # F is KR x R; its k-th vertical block (R x R) satisfies Bk Ckᵀ ≈ F(k) E Dᵀ.
    F_blocks = stage2.V.reshape(tensor.n_slices, R, stage2.V.shape[1])

    seconds = time.perf_counter() - start
    registry = get_registry()
    registry.counter(
        "repro_decompose_compressions_total",
        "Two-stage tensor compressions completed.",
    ).inc()
    registry.histogram(
        "repro_decompose_compress_seconds",
        "Wall-clock seconds per two-stage compression.",
    ).observe(seconds)
    return CompressedTensor(
        A=[svd.U for svd in stage1],
        D=stage2.U,
        E=stage2.singular_values,
        F_blocks=F_blocks,
        seconds=seconds,
    )


def _polar_stack_task(stack: np.ndarray) -> np.ndarray:
    """Polar factors ``Zk Pkᵀ`` for one chunk of stacked small matrices.

    The thin SVD keeps this correct when the stack is rectangular
    ``(m, Rc, R)`` with ``Rc > R`` — a precomputed compression of higher
    rank than the target (its extra directions are simply truncated).
    """
    Z, _, Pt = np.linalg.svd(stack, full_matrices=False)
    return Z @ Pt


def _batched_polar(
    matrices,
    n_threads: int,
    backend: "str | ExecutionBackend" = "thread",
    xp: "ArrayModule | None" = None,
) -> np.ndarray:
    """``Zk Pkᵀ`` and ``Tk``-precursor SVDs for a stack of ``R×R`` matrices.

    Returns the stack ``Zk @ Pkᵀ`` (shape ``(K, R, R)``).  Large stacks are
    chunked evenly across the backend's workers (the "uniform allocation" of
    Section III-F: the per-slice work no longer depends on ``Ik``); small
    stacks go through one LAPACK batched-SVD call, whatever the backend,
    because dispatch would cost more than the work.

    On a device ``xp`` the input stack is already resident (it comes out of
    the device sweep workspace) and the whole thing is one batched SVD
    launch — host worker chunking would only fragment it.
    """
    if xp is not None and not xp.is_numpy:
        Z, _, Pt = xp.svd(matrices, full_matrices=False)
        return xp.matmul(Z, Pt)
    K = matrices.shape[0]
    engine = get_backend(backend, n_threads)
    owned = not isinstance(backend, ExecutionBackend)
    if engine.n_workers <= 1 or K < 4 * engine.n_workers:
        if owned:
            engine.close()
        return _polar_stack_task(matrices)

    chunks = np.array_split(matrices, engine.n_workers)
    try:
        return np.concatenate(engine.map(_polar_stack_task, chunks))
    finally:
        if owned:
            engine.close()


def dpar2(
    tensor: IrregularTensor,
    config: DecompositionConfig | None = None,
    *,
    compressed: CompressedTensor | None = None,
    use_greedy_partition: bool = True,
    exact_convergence: bool = False,
    **overrides,
) -> Parafac2Result:
    """Fit PARAFAC2 with DPar2 (Algorithm 3).

    Parameters
    ----------
    tensor:
        The irregular input ``{Xk}``.
    config:
        Shared hyper-parameters; keyword overrides apply on top.
    compressed:
        A precomputed :func:`compress_tensor` result, letting callers reuse
        one compression across ranks/sweeps (its rank must not be below the
        target rank).
    use_greedy_partition:
        Algorithm-4 load balancing for stage-1 compression (ablation knob).
    exact_convergence:
        When True, evaluate the true reconstruction error against the raw
        slices each sweep instead of the compressed criterion — the
        convergence ablation from DESIGN.md §6.

    Returns
    -------
    Parafac2Result
        ``preprocess_seconds`` is the two-stage compression time,
        ``preprocessed_bytes`` the size of ``{Ak}, D, E, F`` (Fig. 9(a) and
        Fig. 10 inputs).

    Notes
    -----
    **Execution backend.**  ``config.backend`` selects how slice-parallel
    stages run: ``"serial"``, ``"thread"`` (default), or ``"process"``
    (workers fed through ``multiprocessing.shared_memory``); ``config.n_threads``
    sets the worker count.  One backend instance is shared by stage-1
    compression and every sweep's batched polar SVDs, so a process pool is
    forked once per call.  For a fixed ``random_state`` all backends return
    identical factors — per-slice spawned RNGs make the result independent
    of the schedule.

    **Out of core.**  The raw slices are only read during stage-1
    compression, so a tensor built with
    :meth:`IrregularTensor.from_store <repro.tensor.irregular.IrregularTensor.from_store>`
    over an on-disk :class:`~repro.tensor.mmap_store.MmapSliceStore` streams
    from disk slice by slice; iterations then run purely on the compressed
    representation.  (``exact_convergence=True`` re-reads raw slices every
    sweep and defeats the purpose.)

    **Sparse slices.**  A tensor holding CSR slices (built directly, via
    :meth:`IrregularTensor.sparsify <repro.tensor.irregular.IrregularTensor.sparsify>`,
    or loaded from a sparse store payload) is compressed through the SpMM
    fast path — ``O(nnz·R)`` stage-1 work and no densified copies, on disk
    or in RAM.  Iterations are unchanged: they only ever see the compressed
    representation.  The fast path runs on every compute backend: numpy
    uses the scipy/pure-numpy host kernels, torch/CuPy sketch each bucket
    through device SpMM with the CSR structure uploaded once.

    **Zero sweeps.**  ``max_iterations=0`` is allowed and returns the
    compressed tensor's subspaces with the random factor initialization —
    useful for timing or warm-start experiments.

    **Precision.**  ``config.dtype`` selects the pipeline's working
    precision (float64 default).  A float32 run halves memory traffic and
    roughly doubles BLAS throughput during compression; the convergence
    criterion still accumulates in float64.  A tensor whose dtype differs
    from the config is converted up front (an in-RAM copy — build a
    float32 store for out-of-core float32 runs).  When ``compressed`` is
    supplied its dtype wins for the sweeps.

    **Compute backend.**  ``config.compute_backend`` selects the array
    library the batched kernels run on: ``"numpy"`` (default,
    bitwise-stable against earlier releases), ``"torch"`` (CPU),
    ``"torch-cuda"``, or ``"cupy"``.  Device backends keep the stage-1
    bucket stacks, the sweep contractions, and the polar SVDs resident on
    the device; factors and results are always returned as host arrays.
    Device backends are incompatible with out-of-core (memory-mapped)
    tensors and with the ``"process"`` execution backend — both rejected
    with explicit errors before any work starts.
    """
    config = (config or DecompositionConfig()).with_(**overrides)
    xp = config.array_module
    if not isinstance(tensor, IrregularTensor):
        tensor = IrregularTensor(tensor, dtype=config.numpy_dtype)
    elif tensor.dtype != config.numpy_dtype:
        tensor = tensor.astype(config.numpy_dtype)
    if not xp.is_numpy and any(
        isinstance(Xk, np.memmap) for Xk in tensor.slices
    ):
        raise ValueError(
            "out-of-core (memory-mapped) tensors cannot run on compute "
            f"backend {xp.name!r}: streaming from disk and device residency "
            "are mutually exclusive; use compute_backend='numpy'"
        )
    R = min(config.rank, tensor.n_columns, min(tensor.row_counts))

    if config.shards is not None:
        if exact_convergence:
            raise ValueError(
                "exact_convergence re-reads the raw slices every sweep and "
                "is not available on the sharded path; unset config.shards "
                "for the ablation"
            )
        if not use_greedy_partition:
            raise ValueError(
                "use_greedy_partition=False is the Algorithm-4 ablation of "
                "the single-process path; the shard planner always balances "
                "greedily — unset config.shards to run the ablation"
            )
        # Imported lazily: sharded.py imports this module's CompressedTensor.
        from repro.decomposition.sharded import sharded_dpar2

        return sharded_dpar2(
            tensor, config, compressed=compressed, target_rank=R
        )

    # One backend instance serves compression and every sweep, so a process
    # pool pays its fork cost once per dpar2() call.
    with trace.span(
        "dpar2.run", backend=config.backend, compute_backend=xp.name, rank=R
    ):
        with get_backend(config.backend, config.n_threads) as engine:
            if compressed is None:
                with trace.span("dpar2.compress", slices=tensor.n_slices):
                    compressed = compress_tensor(
                        tensor,
                        R,
                        oversampling=config.oversampling,
                        power_iterations=config.power_iterations,
                        random_state=config.random_state,
                        use_greedy_partition=use_greedy_partition,
                        backend=engine,
                        compute_backend=xp,
                    )
            elif compressed.rank < R:
                raise ValueError(
                    f"precomputed compression has rank {compressed.rank} < target {R}"
                )
            return _iterate(
                tensor, config, compressed, engine, R, exact_convergence, xp
            )


def _iterate(
    tensor: IrregularTensor,
    config: DecompositionConfig,
    compressed: CompressedTensor,
    engine: ExecutionBackend,
    R: int,
    exact_convergence: bool,
    xp: "ArrayModule | None" = None,
) -> Parafac2Result:
    """Compressed ALS sweeps (Alg. 3, lines 7–24) on a live backend.

    All per-sweep temporaries live in a cached
    :class:`~repro.linalg.kernels.SweepWorkspace`: contraction paths are
    resolved once per problem shape, every buffer is preallocated, and the
    Gram matrices ``WᵀW`` / ``VᵀV`` / ``HᵀH`` are each computed once per
    sweep and shared across the Lemma 1–3 updates and the convergence
    criterion (``VᵀV`` carries over to the next sweep's Lemma 1, since
    ``V`` only changes in Lemma 2).

    With a device ``xp`` the workspace is a
    :class:`~repro.linalg.kernels.DeviceSweepWorkspace`: ``D, E, F`` move
    to the device once at bind, the ``O(K R² Rc)`` contractions and the
    polar SVDs stay resident across sweeps, and only the small ``R×R``
    normal systems cross back for the float64 Lemma solves (``ws.host`` /
    ``ws.dev`` are identity functions on the numpy workspace, so this is
    one code path, not two).
    """
    xp = get_xp(xp)
    D = compressed.D  # J x Rc
    E = compressed.E  # Rc
    F = compressed.F_blocks  # K x Rc x Rc
    K = compressed.n_slices
    dtype = D.dtype

    init = initialize_factors(tensor.n_columns, K, R, config.random_state)
    H = init.H.astype(dtype, copy=False)
    V = init.V.astype(dtype, copy=False)
    W = init.W.astype(dtype, copy=False)

    ws = acquire_sweep_workspace(
        K, tensor.n_columns, R, compressed.rank, dtype, xp=xp
    )
    ws.bind(D, E, F)

    # Hoisted constants for the exact-error ablation: Akᵀ Xk never changes
    # across sweeps (Qkᵀ Xk = (Zk Pkᵀ)ᵀ (Akᵀ Xk)), so the raw slices are
    # read once per call instead of once per sweep.  The hoist is only
    # valid when the K×Rc×J stack actually fits: memmap-backed tensors are
    # out of core precisely because the data exceeds RAM, and for short
    # slices (Ik ≈ Rc) the stack is as large as the data itself — both
    # keep the per-sweep streaming evaluation instead.
    slice_norms_sq = None
    AtX = None
    if exact_convergence:
        slice_norms_sq = np.array([slice_squared_norm(Xk) for Xk in tensor])
        in_ram = not any(
            isinstance(Xk, np.memmap)
            or (
                isinstance(Xk, CsrMatrix)
                and isinstance(Xk.data, np.memmap)
            )
            for Xk in tensor.slices
        )
        stack_bytes = K * compressed.rank * tensor.n_columns * dtype.itemsize
        if in_ram and stack_bytes <= tensor.nbytes:
            AtX = np.stack(
                [_slice_AtX(compressed.A[k], Xk) for k, Xk in enumerate(tensor)]
            )  # K x Rc x J

    monitor = ConvergenceMonitor(config.tolerance)
    history: list[IterationRecord] = []
    converged = False
    iteration = 0
    # ``polar`` must be bound even when the sweep loop never runs
    # (``max_iterations=0``): the Qk materialization below reads it.
    polar = None

    registry = get_registry()
    m_sweeps = registry.counter(
        "repro_decompose_sweeps_total", "Compressed ALS sweeps completed."
    )
    m_sweep_seconds = registry.histogram(
        "repro_decompose_sweep_seconds", "Wall-clock seconds per compressed ALS sweep."
    )
    m_fitness_delta = registry.gauge(
        "repro_decompose_fitness_delta",
        "Sweep-over-sweep decrease in squared reconstruction error.",
    )
    prev_error: float | None = None

    try:
        # VᵀV for the first sweep's Lemma 1 (updated after each Lemma 2).
        ws.gram_V(V)

        start = time.perf_counter()
        for iteration in range(1, config.max_iterations + 1):
            with trace.span("dpar2.sweep", iteration=iteration) as sweep_span:
                sweep_start = time.perf_counter()

                # --- per-slice R x R SVDs (Alg. 3, lines 8-10) -------------- #
                ws.update_EDtV(V)  # Rc x R: E Dᵀ V
                small = ws.compute_small(W, H)  # F(k) E Dᵀ V Sk Hᵀ over k
                polar = _batched_polar(small, config.n_threads, backend=engine, xp=xp)
                T = ws.compute_T(polar)  # Tk = Pk Zkᵀ F(k)

                # --- Lemma 1: update H -------------------------------------- #
                # The three Lemma solves intentionally run in float64 even on
                # the float32 pipeline (solve_gram promotes its inputs): the
                # Hadamard-of-Grams normal matrix squares the factor condition
                # numbers, and a float32 Cholesky there fails noticeably more
                # often.  The cost is O(J R + R²) casts per solve — noise next
                # to the O(K R² Rc) contractions that stay in float32.
                G1 = ws.mttkrp_H(W)
                ws.gram_W(W)
                H = solve_gram(ws.host(ws.hadamard_gram(ws.WtW, ws.VtV)), ws.host(G1))
                H, _ = normalize_columns(H)
                H = H.astype(dtype, copy=False)

                # --- Lemma 2: update V -------------------------------------- #
                ws.gram_H(H)
                G2 = ws.mttkrp_V(W, H)
                V = solve_gram(ws.host(ws.hadamard_gram(ws.WtW, ws.HtH)), ws.host(G2))
                V, _ = normalize_columns(V)
                V = V.astype(dtype, copy=False)

                # --- Lemma 3: update W -------------------------------------- #
                ws.gram_V(V)  # new V; also serves the criterion + next Lemma 1
                ws.update_EDtV(V)  # recompute with the new V
                G3 = ws.mttkrp_W(H)
                W = solve_gram(ws.host(ws.hadamard_gram(ws.VtV, ws.HtH)), ws.host(G3))
                W = W.astype(dtype, copy=False)

                # --- convergence criterion ---------------------------------- #
                if exact_convergence:
                    polar_host = ws.host(polar)
                    VtV_host = ws.host(ws.VtV)
                    if AtX is not None:
                        error_sq = _exact_error(
                            slice_norms_sq, AtX, polar_host, VtV_host, H, V, W
                        )
                    else:
                        error_sq = _exact_error_streaming(
                            tensor, slice_norms_sq, compressed, polar_host,
                            VtV_host, H, V, W,
                        )
                else:
                    error_sq = ws.compressed_error(H, V, W)
                sweep_seconds = time.perf_counter() - sweep_start
                history.append(IterationRecord(iteration, error_sq, sweep_seconds))
                m_sweeps.inc()
                m_sweep_seconds.observe(sweep_seconds)
                if prev_error is not None:
                    m_fitness_delta.set(float(prev_error) - float(error_sq))
                prev_error = float(error_sq)
                sweep_span.annotate(error_sq=prev_error)
                if monitor.update(error_sq):
                    converged = True
                    break
        iterate_seconds = time.perf_counter() - start
    finally:
        release_sweep_workspace(ws)

    # Materialize Qk = Ak Zk Pkᵀ for the returned model (Alg. 3, line 25),
    # one stacked matmul per row-count bucket.  With zero sweeps there is
    # no polar factor yet; Qk = Ak, truncated to the target rank when the
    # compression has more (rectangular eye).
    Z_Pt = (
        xp.to_numpy(polar)
        if polar is not None
        else np.tile(np.eye(compressed.rank, R, dtype=dtype), (K, 1, 1))
    )
    Q = batched_stacked_matmul(
        compressed.A, Z_Pt, max_stack_rows=_BATCH_MAX_ROWS, xp=xp
    )

    return Parafac2Result(
        Q=Q,
        H=H,
        S=W,
        V=V,
        method="dpar2",
        n_iterations=iteration,
        converged=converged,
        preprocess_seconds=compressed.seconds,
        iterate_seconds=iterate_seconds,
        preprocessed_bytes=compressed.nbytes,
        history=history,
    )


def _slice_AtX(Ak: np.ndarray, Xk) -> np.ndarray:
    """``Akᵀ Xk`` for a dense or CSR slice (the exact-error hoist kernel)."""
    if isinstance(Xk, CsrMatrix):
        return Xk.rmatmul_dense(Ak)
    return Ak.T @ Xk


def _compressed_error(
    T: np.ndarray,
    E: np.ndarray,
    data_term: float,
    D: np.ndarray,
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
) -> float:
    """``Σk ‖Tk E Dᵀ − H Sk Vᵀ‖²`` via the Gram trick (O(JR² + KR³)).

    Standalone variant used by solvers without a sweep workspace (e.g.
    :mod:`repro.decomposition.constrained`); the DPar2 loop itself uses
    :meth:`SweepWorkspace.compressed_error`, which reuses the sweep's Gram
    matrices and buffers.
    """
    VtD = V.T @ D  # R x Rc, O(J R Rc), shared across slices
    VtV = V.T @ V
    TE = T * E  # K x R x Rc
    # cross_k = sum( (Tk E) * ((H * W[k]) @ VtD) )
    HS = H[None, :, :] * W[:, None, :]  # K x R x R
    cross = float(np.einsum("kij,kil,lj->", TE, HS, VtD, optimize=True))
    model = float(
        np.einsum("kli,klj,ij->", HS, HS, VtV, optimize=True)
    )
    return max(data_term - 2.0 * cross + model, 0.0)


def _exact_error(
    slice_norms_sq: np.ndarray,
    AtX: np.ndarray,
    polar: np.ndarray,
    VtV: np.ndarray,
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
) -> float:
    """True ``Σk ‖Xk − Qk H Sk Vᵀ‖²`` (ablation path).

    Uses the hoisted per-slice constants: ``‖Xk‖²`` and ``Akᵀ Xk`` (so
    ``Qkᵀ Xk = (Zk Pkᵀ)ᵀ (Akᵀ Xk)`` without re-materializing ``Qk`` or
    re-reading the raw slices), with all K cross terms evaluated as batched
    matmuls.  Like the compressed criterion, the reductions accumulate in
    float64: the cross term is ``‖X‖²``-scale, and float32 rounding there
    would swamp the per-sweep change the stopping rule watches.
    """
    proj = np.swapaxes(polar, 1, 2) @ AtX @ V  # K x R x R: Qkᵀ Xk V
    HS = H[None, :, :] * W[:, None, :]  # K x R x R
    if proj.dtype != np.float64:
        proj = proj.astype(np.float64)
        HS = HS.astype(np.float64)
        VtV = VtV.astype(np.float64)
    cross = float(np.einsum("kij,kij->", proj, HS, optimize=True))
    model = float(np.einsum("kli,klj,ij->", HS, HS, VtV, optimize=True))
    return max(float(slice_norms_sq.sum()) - 2.0 * cross + model, 0.0)


def _exact_error_streaming(
    tensor: IrregularTensor,
    slice_norms_sq: np.ndarray,
    compressed: CompressedTensor,
    polar: np.ndarray,
    VtV: np.ndarray,
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
) -> float:
    """:func:`_exact_error` with O(max Ik · J) working memory.

    Used when the hoisted ``Akᵀ Xk`` stack would not fit (memmap-backed
    slices, or ``Ik ≈ Rc`` where the stack rivals the data): slices are
    re-read one at a time each sweep, exactly like the pre-hoist code.
    """
    VtV64 = VtV.astype(np.float64, copy=False)
    total = 0.0
    for k, Xk in enumerate(tensor):
        if isinstance(Xk, CsrMatrix) and not isinstance(Xk.data, np.memmap):
            # This evaluator runs every sweep; caching the transpose of an
            # in-RAM CSR slice pays the counting sort once instead of per
            # sweep.  Memmap-backed slices stay ephemeral — pinning an
            # in-RAM copy is exactly what out-of-core must not do.
            Xk.transpose()
        AtXk = _slice_AtX(compressed.A[k], Xk)
        M_left = (H * W[k]).astype(np.float64, copy=False)
        proj = ((polar[k].T @ AtXk) @ V).astype(np.float64, copy=False)
        cross = float(np.sum(proj * M_left))
        model_sq = float(np.sum((M_left.T @ M_left) * VtV64))
        total += float(slice_norms_sq[k]) - 2.0 * cross + model_sq
    return max(total, 0.0)
