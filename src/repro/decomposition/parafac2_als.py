"""PARAFAC2-ALS — the direct-fitting baseline (Algorithm 2, Kiers et al.).

Every sweep touches the raw slices twice: an ``Ik×R`` SVD to update ``Qk``
and the projection ``Yk = Qkᵀ Xk`` — both ``O(Σk Ik J R)`` — followed by a
single CP-ALS iteration on the stacked ``R×J×K`` tensor computed naively
(full unfoldings and materialized Khatri–Rao products).  This cost profile
is exactly the one the paper contrasts DPar2 against.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.cp_als import cp_single_iteration
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.parallel.backends import get_backend
from repro.tensor.dense import DenseTensor
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig


def update_orthogonal_factor(Xk: np.ndarray, target: np.ndarray) -> np.ndarray:
    """``Qk ← Z' P'ᵀ`` from the SVD of ``Xk @ target`` (Alg. 2, lines 4–5).

    ``target`` is ``V Sk Hᵀ`` (``J×R``); the result is the Procrustes
    minimizer of ``‖Xk − Qk H Sk Vᵀ‖`` over column-orthogonal ``Qk``.
    """
    Z, _, Pt = np.linalg.svd(Xk @ target, full_matrices=False)
    return Z @ Pt


def _slice_update_task(item) -> tuple[np.ndarray, np.ndarray]:
    """Per-slice sweep work: ``(Qk, Yk = Qkᵀ Xk)`` from ``(Xk, V Sk Hᵀ)``.

    Module-level so the process backend can pickle it; ``Xk`` itself is
    shipped through shared memory (or referenced in place when the tensor
    is memory-mapped).
    """
    Xk, target = item
    Qk = update_orthogonal_factor(Xk, target)
    return Qk, Qk.T @ Xk


def reconstruction_error_squared(
    Y_slices: list[np.ndarray],
    slice_norms_sq: np.ndarray,
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
) -> float:
    """Exact ``Σk ‖Xk − Qk H Sk Vᵀ‖²`` given the projections ``Yk = QkᵀXk``.

    Because ``Qk`` has orthonormal columns,
    ``‖Xk − Qk M‖² = ‖Xk‖² − 2⟨Yk, M⟩ + ‖M‖²`` with ``M = H Sk Vᵀ`` —
    exact, while only touching ``R×J`` intermediates.
    """
    VtV = V.T @ V
    total = 0.0
    for k, Yk in enumerate(Y_slices):
        M_left = H * W[k]  # R x R, equals H @ diag(Sk)
        cross = float(np.sum((Yk @ V) * M_left))
        model_sq = float(np.sum((M_left.T @ M_left) * VtV))
        total += float(slice_norms_sq[k]) - 2.0 * cross + model_sq
    return max(total, 0.0)


def parafac2_als(
    tensor: IrregularTensor,
    config: DecompositionConfig | None = None,
    **overrides,
) -> Parafac2Result:
    """Fit PARAFAC2 by direct ALS (Algorithm 2).

    Parameters
    ----------
    tensor:
        The irregular input ``{Xk}``.
    config:
        Shared hyper-parameters; keyword overrides (e.g. ``rank=15``) are
        applied on top.

    Returns
    -------
    Parafac2Result
        With ``preprocess_seconds == 0`` (this method has no preprocessing)
        and ``preprocessed_bytes`` equal to the input size, matching how
        Fig. 10 accounts for methods that iterate on the raw tensor.

    Notes
    -----
    The per-slice ``Qk`` update and projection are distributed over
    ``config.backend`` workers with Algorithm-4 load balancing on the row
    counts — the same slice-parallelism DPar2's compression uses, so the
    baseline is not handicapped in multi-worker comparisons.
    """
    config = (config or DecompositionConfig()).with_(**overrides)
    if not isinstance(tensor, IrregularTensor):
        tensor = IrregularTensor(tensor)
    if tensor.has_sparse_slices:
        raise ValueError(
            "parafac2_als does not support sparse (CSR) slices; densify "
            "with tensor.densified(), or use dpar2/spartan"
        )
    R = min(config.rank, tensor.n_columns, min(tensor.row_counts))

    init = initialize_factors(
        tensor.n_columns, tensor.n_slices, R, config.random_state
    )
    H, V, W = init.H, init.V, init.W
    slice_norms_sq = np.array([float(np.sum(Xk * Xk)) for Xk in tensor])

    monitor = ConvergenceMonitor(config.tolerance)
    history: list[IterationRecord] = []
    Q: list[np.ndarray] = [None] * tensor.n_slices
    converged = False
    iteration = 0
    row_counts = tensor.row_counts

    start = time.perf_counter()
    with get_backend(config.backend, config.n_threads) as engine:
        for iteration in range(1, config.max_iterations + 1):
            sweep_start = time.perf_counter()
            items = [(Xk, (V * W[k]) @ H.T) for k, Xk in enumerate(tensor)]
            pairs = engine.map_partitioned(
                _slice_update_task, items, weights=row_counts
            )
            Q = [Qk for Qk, _ in pairs]
            Y_slices = [Yk for _, Yk in pairs]

            Y = DenseTensor.from_frontal_slices(Y_slices)
            H, V, W = cp_single_iteration(
                (Y.unfold(1), Y.unfold(2), Y.unfold(3)), H, V, W
            )

            error_sq = reconstruction_error_squared(
                Y_slices, slice_norms_sq, H, V, W
            )
            history.append(
                IterationRecord(iteration, error_sq, time.perf_counter() - sweep_start)
            )
            if monitor.update(error_sq):
                converged = True
                break
    iterate_seconds = time.perf_counter() - start

    if Q and Q[0] is None:
        # Zero sweeps (``max_iterations=0``): materialize the Procrustes
        # factors implied by the random initialization.
        Q = [
            update_orthogonal_factor(Xk, (V * W[k]) @ H.T)
            for k, Xk in enumerate(tensor)
        ]

    return Parafac2Result(
        Q=Q,
        H=H,
        S=W,
        V=V,
        method="parafac2_als",
        n_iterations=iteration,
        converged=converged,
        preprocess_seconds=0.0,
        iterate_seconds=iterate_seconds,
        preprocessed_bytes=tensor.nbytes,
        history=history,
    )
