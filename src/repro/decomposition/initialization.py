"""Factor initialization for ALS-style PARAFAC2 solvers.

All four methods initialize identically (Algorithm 2/3, line 1): ``H`` as
the ``R×R`` identity, ``V`` with orthonormal columns, and every ``Sk`` as
the identity — the standard direct-fitting initialization of Kiers et al.,
which keeps cross-method fitness comparisons apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.qr import random_orthonormal
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


@dataclass
class InitialFactors:
    """The shared starting point ``(H, V, W)`` of an ALS run.

    ``W`` is the ``K×R`` matrix whose rows are ``diag(Sk)``.
    """

    H: np.ndarray
    V: np.ndarray
    W: np.ndarray


def initialize_factors(
    n_columns: int,
    n_slices: int,
    rank: int,
    random_state=None,
) -> InitialFactors:
    """Build the initial ``H``, ``V``, ``W`` for a rank-``rank`` run.

    Parameters
    ----------
    n_columns:
        ``J`` — the shared column dimension, rows of ``V``.
    n_slices:
        ``K`` — number of slices, rows of ``W``.
    rank:
        Target rank ``R``.
    random_state:
        Seed/generator for the random orthonormal ``V``.  With ``J >= R``
        (the usual case) ``V`` starts orthonormal; otherwise it falls back
        to i.i.d. Gaussian columns.
    """
    J = check_positive_int(n_columns, "n_columns")
    K = check_positive_int(n_slices, "n_slices")
    R = check_positive_int(rank, "rank")
    rng = as_generator(random_state)

    H = np.eye(R)
    if J >= R:
        V = random_orthonormal(J, R, rng)
    else:
        V = rng.standard_normal((J, R))
    W = np.ones((K, R))
    return InitialFactors(H=H, V=V, W=W)
