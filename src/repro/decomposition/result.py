"""Result containers shared by every PARAFAC2 solver.

A PARAFAC2 model of an irregular tensor ``{Xk}`` is
``Xk ≈ Uk Sk Vᵀ`` with ``Uk = Qk H`` (column-orthogonal ``Qk``, common
``H`` and ``V``, diagonal ``Sk``).  The container stores the common factors
plus either the explicit ``Qk`` or their implicit factorized form — DPar2
never materializes ``Qk`` internally, but exposes ``U(k)`` on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import slice_squared_norm
from repro.tensor.irregular import IrregularTensor


@dataclass
class IterationRecord:
    """Per-iteration trace: criterion value and wall-clock seconds."""

    iteration: int
    criterion: float
    seconds: float


@dataclass
class Parafac2Result:
    """Factors of a fitted PARAFAC2 model plus bookkeeping.

    Attributes
    ----------
    Q:
        List of ``Ik×R`` column-orthogonal matrices ``Qk``.
    H:
        ``R×R`` common matrix (``Uk = Qk H``).
    S:
        ``K×R`` array whose ``k``-th row holds ``diag(Sk)``.
    V:
        ``J×R`` common right factor.
    method:
        Solver name (``"dpar2"``, ``"parafac2_als"``, …).
    n_iterations:
        ALS sweeps actually performed.
    converged:
        Whether the stopping tolerance was reached before the iteration cap.
    preprocess_seconds / iterate_seconds:
        Wall-clock split the paper reports separately (Fig. 9).
    preprocessed_bytes:
        Size of whatever the method keeps around after preprocessing
        (Fig. 10); for methods without preprocessing this is the input size.
    history:
        Per-iteration convergence-criterion trace.
    stats:
        Solver-specific execution statistics (plain JSON-able dict).  The
        sharded DPar2 coordinator records its ``"sharding"`` entry here:
        the cell/shard layout, the load-imbalance ratio, and the measured
        allreduce bytes per sweep.  Empty for solvers with nothing to
        report; not persisted by :meth:`save`.
    """

    Q: list[np.ndarray]
    H: np.ndarray
    S: np.ndarray
    V: np.ndarray
    method: str = "unknown"
    n_iterations: int = 0
    converged: bool = False
    preprocess_seconds: float = 0.0
    iterate_seconds: float = 0.0
    preprocessed_bytes: int = 0
    history: list[IterationRecord] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        rank = self.H.shape[0]
        if self.H.shape != (rank, rank):
            raise ValueError(f"H must be square, got {self.H.shape}")
        if self.V.ndim != 2 or self.V.shape[1] != rank:
            raise ValueError(f"V must be J x {rank}, got {self.V.shape}")
        if self.S.ndim != 2 or self.S.shape != (len(self.Q), rank):
            raise ValueError(
                f"S must be K x {rank} = {len(self.Q)} x {rank}, got {self.S.shape}"
            )
        for k, Qk in enumerate(self.Q):
            if Qk.ndim != 2 or Qk.shape[1] != rank:
                raise ValueError(
                    f"Q[{k}] must have {rank} columns, got shape {Qk.shape}"
                )

    # ------------------------------------------------------------------ #
    # model access
    # ------------------------------------------------------------------ #

    @property
    def rank(self) -> int:
        return self.H.shape[0]

    @property
    def n_slices(self) -> int:
        return len(self.Q)

    @property
    def total_seconds(self) -> float:
        """End-to-end running time (the x-axis of Fig. 1)."""
        return self.preprocess_seconds + self.iterate_seconds

    def U(self, k: int) -> np.ndarray:
        """Temporal factor ``Uk = Qk H`` of slice ``k``."""
        return self.Q[k] @ self.H

    def S_matrix(self, k: int) -> np.ndarray:
        """Diagonal matrix ``Sk``."""
        return np.diag(self.S[k])

    def reconstruct_slice(self, k: int) -> np.ndarray:
        """``X̂k = Qk H Sk Vᵀ``."""
        return self.Q[k] @ (self.H * self.S[k]) @ self.V.T

    def reconstruct(self) -> IrregularTensor:
        """Materialize every reconstructed slice as an irregular tensor."""
        return IrregularTensor(
            [self.reconstruct_slice(k) for k in range(self.n_slices)], copy=False
        )

    # ------------------------------------------------------------------ #
    # quality metrics
    # ------------------------------------------------------------------ #

    def residual_squared(self, tensor: IrregularTensor) -> float:
        """``Σk ‖Xk − X̂k‖_F²`` against the *original* data.

        Computed slice by slice without materializing all reconstructions at
        once, using the expansion
        ``‖X − X̂‖² = ‖X‖² − 2⟨X, X̂⟩ + ‖X̂‖²`` with the cross and model
        terms reduced to ``R×R`` products.
        """
        if tensor.n_slices != self.n_slices:
            raise ValueError(
                f"tensor has {tensor.n_slices} slices, model has {self.n_slices}"
            )
        if tensor.n_columns != self.V.shape[0]:
            raise ValueError(
                f"tensor has J={tensor.n_columns}, model V has {self.V.shape[0]} rows"
            )
        VtV = self.V.T @ self.V
        total = 0.0
        for k, Xk in enumerate(tensor):
            B = (self.H * self.S[k]) @ self.V.T  # R x J
            # cross term <Xk, Qk B> = trace(Bᵀ Qkᵀ Xk)
            if isinstance(Xk, CsrMatrix):
                QtX = Xk.rmatmul_dense(self.Q[k])  # R x J, via SpMM
            else:
                QtX = self.Q[k].T @ Xk  # R x J
            cross = float(np.sum(QtX * B))
            HS = self.H * self.S[k]
            model_sq = float(np.sum((HS.T @ HS) * VtV))
            total += slice_squared_norm(Xk) - 2.0 * cross + model_sq
        # Rounding can push a tiny positive residual below zero.
        return max(total, 0.0)

    def fitness(self, tensor: IrregularTensor) -> float:
        """The paper's fitness: ``1 − Σ‖Xk − X̂k‖² / Σ‖Xk‖²``."""
        denom = tensor.squared_norm()
        if denom == 0.0:
            return 1.0
        return 1.0 - self.residual_squared(tensor) / denom

    def factor_nbytes(self) -> int:
        """Bytes needed to store the model factors themselves."""
        return (
            sum(Qk.nbytes for Qk in self.Q)
            + self.H.nbytes
            + self.S.nbytes
            + self.V.nbytes
        )

    # ------------------------------------------------------------------ #
    # persistence (delegates to the serving payload format)
    # ------------------------------------------------------------------ #

    def save(self, path, *, config=None) -> None:
        """Persist the model as a manifest + ``.npy`` segment directory.

        The payload is the same schema-versioned format
        :class:`~repro.serve.store.FactorStore` publishes registry versions
        in (see :func:`repro.serve.store.write_model`), so a model saved
        here can be inspected, memmap-loaded, or copied into a registry
        unchanged.  ``config`` (a
        :class:`~repro.util.config.DecompositionConfig`) rides along in the
        manifest, giving dtype *and* hyper-parameter round-trip.
        """
        from repro.serve.store import write_model

        write_model(path, self, config=config)

    @classmethod
    def load(cls, path, *, mmap: bool = True) -> "Parafac2Result":
        """Load a model saved by :meth:`save` (memmap-backed by default).

        Use :func:`repro.serve.store.read_model` instead when the stored
        config or manifest metadata is needed alongside the factors.
        """
        from repro.serve.store import read_model

        return read_model(path, mmap=mmap).result
