"""Sharded DPar2: shard-local stage 1 and sweeps with O(R²) allreduce.

DPar2's cost structure is embarrassingly shardable.  Stage-1 compression is
per-slice, and the compressed ALS sweep couples slices only through small
Gram statistics — everything slice-shaped (``Ak``, ``F(k)``, ``Sk``, the
polar factors and ``Tk`` buffers) can live and stay on a worker.  This
module runs DPar2 across N shard workers:

* **stage 1** — each shard compresses its slices locally through the
  stacked randomized-SVD kernels and returns only the small right factors
  ``(σk, Ck)``; the parent runs stage 2 on their ``J×KR`` concatenation.
  The tall ``Ak`` never leave the worker that computed them.
* **sweeps** — three rounds per sweep.  The coordinator broadcasts the
  current ``E Dᵀ V`` and ``H`` (round 1: Lemma-1 partials ``G1``, ``WᵀW``
  come back), the new ``H`` (round 2: the Lemma-2 inner sums come back;
  ``V`` updates on the coordinator, which is the only place ``D`` is
  needed), then the refreshed ``E Dᵀ V`` plus the Lemma-3 normal matrix
  (round 3: shards update their rows of ``W`` locally and return the two
  convergence-criterion scalars).  Every payload is O(R·Rc) per message —
  independent of K and of the slice heights.
* **finalize** — one gather of the factor rows and ``Qk = Ak Zk Pkᵀ``.

**Determinism contract.**  The K slices are grouped into a fixed set of
reduction *cells* (``config.shard_cells``, clamped to K) by Algorithm-4
greedy balancing; shards own whole cells.  Every cross-slice reduction is
computed per cell and summed by the coordinator in cell order, every
batched kernel (stage-1 stacks, polar SVDs, einsum contractions, the
Lemma-3 row solves) runs per cell, and the cell layout depends only on the
row counts and the cell count.  Floating-point addition is not
associative, so this is what buys the contract: **final factors are
bitwise-identical for any shard count and any shard backend** (serial /
thread / process).  The single-process path is untouched and remains its
own bitwise baseline; sharded results differ from it only by the
per-cell accumulation order.  See ``docs/distributed.md``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.cp_als import normalize_columns
from repro.decomposition.dpar2 import CompressedTensor
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.linalg.kernels import CellSweepWorkspace, batched_randomized_svd
from repro.linalg.pinv import solve_gram
from repro.linalg.randomized_svd import RandomizedSVDResult, randomized_svd
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.parallel.sharding import ShardPlan, get_shard_runner, plan_shards
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig
from repro.util.rng import as_generator, spawn_generators

__all__ = ["Dpar2Shard", "sharded_dpar2", "sharded_stage1"]


# --------------------------------------------------------------------- #
# shard-local state
# --------------------------------------------------------------------- #


class Dpar2Shard:
    """Worker-side state: the cells a shard owns and their sweep kernels.

    Built by the shard runner's factory from one init payload holding the
    shard's cells (``[(cell_id, [slice indices...]), ...]``), either the
    raw slices plus per-slice generators (stage 1 runs here) or the
    precomputed ``Ak`` factors, and the stage-1 hyper-parameters.  All
    methods are invoked through :class:`~repro.parallel.sharding.ShardRunner`
    broadcasts and return per-cell partials keyed by cell id.
    """

    def __init__(self, init: dict) -> None:
        self.cells: list[tuple[int, list[int]]] = [
            (int(cell_id), list(indices)) for cell_id, indices in init["cells"]
        ]
        self.rank = int(init["rank"])
        self.oversampling = int(init["oversampling"])
        self.power_iterations = int(init["power_iterations"])
        self.return_U = bool(init.get("return_U", False))
        self.slices: dict | None = init.get("slices")
        self.generators: dict | None = init.get("generators")
        self.A: dict = dict(init.get("A") or {})
        self._ws: dict[int, CellSweepWorkspace] = {}
        self._polar: dict[int, np.ndarray] = {}
        self._dtype = np.dtype(np.float64)

    # ------------------------------- stage 1 -------------------------- #

    def startup(self) -> dict:
        """Stage-1 compress the shard's slices, one batched call per cell.

        Returns ``{k: (σk, Ck)}`` — or ``{k: (Uk, σk, Ck)}`` when built
        with ``return_U`` (the streaming gather) — for the coordinator's
        stage 2.  ``Ak = Uk`` stays here for the sweeps and the final
        ``Qk`` materialization.  Running the batched kernel per cell (not
        per shard) keeps each slice's bucketing fixed, so stage-1 results
        are invariant to the shard count.
        """
        out: dict[int, tuple] = {}
        if self.slices is None:
            return out
        for _, indices in self.cells:
            results = batched_randomized_svd(
                [self.slices[k] for k in indices],
                self.rank,
                oversampling=self.oversampling,
                power_iterations=self.power_iterations,
                generators=[self.generators[k] for k in indices],
            )
            for k, svd in zip(indices, results):
                self.A[k] = svd.U
                out[k] = (
                    (svd.U, svd.singular_values, svd.V)
                    if self.return_U
                    else (svd.singular_values, svd.V)
                )
        self.slices = None  # raw data is never needed again
        self.generators = None
        return out

    # ------------------------------- sweeps --------------------------- #

    def bind(
        self, E: np.ndarray, F_cells: dict, W_cells: dict, target_rank: int
    ) -> dict:
        """Build each cell's sweep workspace; return float64 data terms."""
        self._dtype = np.asarray(E).dtype
        out = {}
        for cell_id, indices in self.cells:
            ws = CellSweepWorkspace(
                len(indices), target_rank, len(E), self._dtype
            )
            out[cell_id] = ws.bind(E, F_cells[cell_id], W_cells[cell_id])
            self._ws[cell_id] = ws
        return out

    def sweep_phase1(self, EDtV: np.ndarray, H: np.ndarray) -> dict:
        """Polar SVDs + Lemma-1 partials: ``{cell: (G1, WᵀW)}``."""
        out = {}
        for cell_id, _ in self.cells:
            ws = self._ws[cell_id]
            small = ws.compute_small(EDtV, H)
            Z, _, Pt = np.linalg.svd(small, full_matrices=False)
            polar = np.matmul(Z, Pt)
            self._polar[cell_id] = polar
            ws.compute_T(polar)
            out[cell_id] = (ws.mttkrp_H(EDtV), ws.gram_W())
        return out

    def sweep_phase2(self, H: np.ndarray) -> dict:
        """Lemma-2 inner-sum partials: ``{cell: Σk Tkᵀ H diag(Sk)}``."""
        return {
            cell_id: self._ws[cell_id].mttkrp_V_inner(H)
            for cell_id, _ in self.cells
        }

    def sweep_phase3(
        self,
        EDtV: np.ndarray,
        gram: np.ndarray,
        VtD: np.ndarray,
        VtV: np.ndarray,
        H: np.ndarray,
    ) -> dict:
        """Update the shard's ``W`` rows locally; return criterion scalars.

        The normal matrix ``(VᵀV ∗ HᵀH)`` is identical for every row of
        ``W``, so each cell solves its own rows — per-cell solves keep the
        result shard-count-invariant.  The returned ``{cell: (cross,
        model)}`` float64 partials complete the compressed convergence
        criterion on the coordinator.
        """
        out = {}
        for cell_id, _ in self.cells:
            ws = self._ws[cell_id]
            G3 = ws.mttkrp_W(EDtV, H)
            ws.W = solve_gram(gram, G3).astype(self._dtype, copy=False)
            out[cell_id] = ws.criterion_partials(VtD, VtV, H)
        return out

    # ------------------------------- gather --------------------------- #

    def finalize(self, target_rank: int) -> dict:
        """One-time gather: ``{cell: (W rows, [Qk = Ak Zk Pkᵀ, ...])}``.

        With zero sweeps there is no polar factor; ``Qk`` is then ``Ak``
        truncated to the target rank, exactly like the single-process
        path.
        """
        out = {}
        for cell_id, indices in self.cells:
            ws = self._ws[cell_id]
            polar = self._polar.get(cell_id)
            if polar is None:
                polar = np.tile(
                    np.eye(ws.Rc, target_rank, dtype=self._dtype),
                    (len(indices), 1, 1),
                )
            Q = [self.A[k] @ polar[pos] for pos, k in enumerate(indices)]
            out[cell_id] = (ws.W, Q)
        return out


def _build_shard(init: dict) -> Dpar2Shard:
    """Module-level factory so the process runner can pickle it."""
    return Dpar2Shard(init)


# --------------------------------------------------------------------- #
# coordinator
# --------------------------------------------------------------------- #


def _merge_cells(per_shard: list[dict]) -> dict:
    """Collect ``{cell: partial}`` dicts from every shard into one."""
    merged: dict = {}
    for shard_result in per_shard:
        merged.update(shard_result)
    return merged


def _sum_cell_arrays(merged: dict, item=None) -> np.ndarray:
    """Sum per-cell array partials in ascending cell order (bitwise-fixed)."""
    total: np.ndarray | None = None
    for cell_id in sorted(merged):
        part = merged[cell_id] if item is None else merged[cell_id][item]
        if total is None:
            total = part.copy()
        else:
            total += part
    return total


def _sum_cell_scalars(merged: dict, item: int | None = None) -> float:
    """Sum per-cell float partials in ascending cell order."""
    total = 0.0
    for cell_id in sorted(merged):
        part = merged[cell_id] if item is None else merged[cell_id][item]
        total += float(part)
    return total


def _shard_payloads(
    plan: ShardPlan,
    *,
    rank: int,
    oversampling: int,
    power_iterations: int,
    slices=None,
    generators=None,
    A=None,
    return_U: bool = False,
) -> list[dict]:
    """One init payload per shard, carrying only that shard's slices."""
    payloads = []
    for shard in range(plan.n_shards):
        cells = [
            (cell_id, list(plan.cells[cell_id]))
            for cell_id in plan.shard_cells[shard]
        ]
        owned = [k for _, indices in cells for k in indices]
        payload: dict = {
            "cells": cells,
            "rank": rank,
            "oversampling": oversampling,
            "power_iterations": power_iterations,
            "return_U": return_U,
        }
        if slices is not None:
            payload["slices"] = {k: slices[k] for k in owned}
            payload["generators"] = {k: generators[k] for k in owned}
        if A is not None:
            payload["A"] = {k: A[k] for k in owned}
        payloads.append(payload)
    return payloads


def sharded_stage1(
    matrices,
    generators,
    *,
    rank: int,
    oversampling: int,
    power_iterations: int,
    n_shards: int,
    shard_backend: str,
    n_cells: int,
    fault_stats_out: dict | None = None,
) -> list[RandomizedSVDResult]:
    """Stage-1 compress a batch of slices across shards; gather everything.

    Used by :meth:`StreamingDpar2.absorb_many
    <repro.decomposition.streaming.StreamingDpar2.absorb_many>`: the full
    per-slice factors (including ``Uk``) come back because the streaming
    state keeps them.  Per-slice results are bitwise-identical to the
    serial batched path for dense slices (each slice draws its own
    generator and the stacked LAPACK kernels are composition-invariant),
    and invariant to the shard count for any slice type because the cell
    layout is fixed by row counts alone.  When ``fault_stats_out`` is
    given, the runner's recovery counters are merged into it (restart
    counts accumulate across calls).
    """
    matrices = list(matrices)
    plan = plan_shards(
        [Xk.shape[0] for Xk in matrices], n_shards, n_cells=n_cells
    )
    payloads = _shard_payloads(
        plan,
        rank=rank,
        oversampling=oversampling,
        power_iterations=power_iterations,
        slices=matrices,
        generators=list(generators),
        return_U=True,
    )
    with get_shard_runner(shard_backend, _build_shard, payloads) as runner:
        merged = _merge_cells(runner.start())
        if fault_stats_out is not None:
            fresh = runner.fault_stats
            fault_stats_out["worker_restarts"] = (
                fault_stats_out.get("worker_restarts", 0)
                + fresh["worker_restarts"]
            )
            fault_stats_out["replayed_calls"] = (
                fault_stats_out.get("replayed_calls", 0)
                + fresh["replayed_calls"]
            )
            fault_stats_out.setdefault("events", []).extend(fresh["events"])
    return [
        RandomizedSVDResult(U=U, singular_values=sv, V=V)
        for U, sv, V in (merged[k] for k in range(len(matrices)))
    ]


def sharded_dpar2(
    tensor: IrregularTensor,
    config: DecompositionConfig,
    *,
    compressed: CompressedTensor | None = None,
    target_rank: int | None = None,
) -> Parafac2Result:
    """Fit DPar2 through the shard coordinator (``config.shards`` workers).

    Called by :func:`repro.decomposition.dpar2.dpar2` when
    ``config.shards`` is set; ``tensor`` is already dtype-normalized.  The
    result matches the single-process solver in structure and adds a
    ``stats["sharding"]`` record: the chosen cell layout, the shard
    imbalance ratio, the measured allreduce bytes per sweep, and the
    transport's recovery counters (``worker_restarts`` plus a ``faults``
    block with replayed calls and per-event stderr excerpts).
    """
    if config.shards is None:
        raise ValueError("sharded_dpar2 requires config.shards to be set")
    R = (
        min(config.rank, tensor.n_columns, min(tensor.row_counts))
        if target_rank is None
        else target_rank
    )
    if compressed is not None and compressed.rank < R:
        raise ValueError(
            f"precomputed compression has rank {compressed.rank} < target {R}"
        )
    K = tensor.n_slices
    plan = plan_shards(tensor.row_counts, config.shards, config.shard_cells)

    run_span = trace.span(
        "dpar2.run", backend="sharded", shards=plan.n_shards, rank=R
    )
    registry = get_registry()
    m_sweeps = registry.counter(
        "repro_decompose_sweeps_total", "Compressed ALS sweeps completed."
    )
    m_sweep_seconds = registry.histogram(
        "repro_decompose_sweep_seconds", "Wall-clock seconds per compressed ALS sweep."
    )
    m_fitness_delta = registry.gauge(
        "repro_decompose_fitness_delta",
        "Sweep-over-sweep decrease in squared reconstruction error.",
    )
    m_allreduce = registry.counter(
        "repro_shard_allreduce_bytes_total",
        "Bytes moved through the sweep-phase allreduce rounds.",
    )
    prev_error: float | None = None

    preprocess_start = time.perf_counter()
    if compressed is None:
        generators = spawn_generators(config.random_state, K)
        payloads = _shard_payloads(
            plan,
            rank=R,
            oversampling=config.oversampling,
            power_iterations=config.power_iterations,
            slices=tensor.slices,
            generators=generators,
        )
    else:
        payloads = _shard_payloads(
            plan,
            rank=compressed.rank,
            oversampling=config.oversampling,
            power_iterations=config.power_iterations,
            A=compressed.A,
        )

    with run_span, get_shard_runner(
        config.shard_backend, _build_shard, payloads
    ) as runner:
        with trace.span("dpar2.compress", slices=K):
            stage1 = _merge_cells(runner.start())

            if compressed is None:
                # Stage 2 on the gathered small factors, in slice order —
                # identical assembly to compress_tensor.
                M = np.empty((tensor.n_columns, K * R), dtype=tensor.dtype)
                for k in range(K):
                    sv, Vk = stage1[k]
                    np.multiply(Vk, sv, out=M[:, k * R : (k + 1) * R])
                stage2 = randomized_svd(
                    M,
                    R,
                    oversampling=config.oversampling,
                    power_iterations=config.power_iterations,
                    random_state=as_generator(config.random_state),
                )
                D = stage2.U
                E = stage2.singular_values
                F = stage2.V.reshape(K, R, stage2.V.shape[1])
                itemsize = np.dtype(tensor.dtype).itemsize
                preprocessed_bytes = (
                    sum(rows * R for rows in tensor.row_counts) * itemsize
                    + D.nbytes + E.nbytes + F.nbytes
                )
            else:
                D, E, F = compressed.D, compressed.E, compressed.F_blocks
                preprocessed_bytes = compressed.nbytes
            preprocess_seconds = (
                time.perf_counter() - preprocess_start
                if compressed is None
                else compressed.seconds
            )
        dtype = D.dtype
        Rc = D.shape[1]

        init = initialize_factors(tensor.n_columns, K, R, config.random_state)
        H = init.H.astype(dtype, copy=False)
        V = init.V.astype(dtype, copy=False)
        W = init.W.astype(dtype, copy=False)
        DE = np.multiply(D, E)  # J x Rc, the Lemma-2 left factor

        bind_args = []
        for shard in range(plan.n_shards):
            F_cells = {
                cell_id: np.ascontiguousarray(F[list(plan.cells[cell_id])])
                for cell_id in plan.shard_cells[shard]
            }
            W_cells = {
                cell_id: W[list(plan.cells[cell_id])]
                for cell_id in plan.shard_cells[shard]
            }
            bind_args.append((E, F_cells, W_cells, R))
        data_term = _sum_cell_scalars(
            _merge_cells(runner.call_each("bind", bind_args))
        )

        monitor = ConvergenceMonitor(config.tolerance)
        history: list[IterationRecord] = []
        converged = False
        iteration = 0
        VtV = V.T @ V
        bytes_before_sweeps = runner.bytes_transferred

        iterate_start = time.perf_counter()
        for iteration in range(1, config.max_iterations + 1):
            with trace.span("dpar2.sweep", iteration=iteration) as sweep_span:
                sweep_start = time.perf_counter()
                bytes_at_sweep_start = runner.bytes_transferred

                # Round 1: Lemma 1 — update H on the coordinator.
                with trace.span("dpar2.sweep_phase1"):
                    EDtV = np.multiply(D.T @ V, E[:, None])
                    phase1 = _merge_cells(runner.call("sweep_phase1", EDtV, H))
                    G1 = _sum_cell_arrays(phase1, item=0)
                    WtW = _sum_cell_arrays(phase1, item=1)
                    H = solve_gram(WtW * VtV, G1)
                    H, _ = normalize_columns(H)
                    H = H.astype(dtype, copy=False)

                # Round 2: Lemma 2 — update V (D never leaves the
                # coordinator).
                with trace.span("dpar2.sweep_phase2"):
                    HtH = H.T @ H
                    inner = _sum_cell_arrays(
                        _merge_cells(runner.call("sweep_phase2", H))
                    )
                    G2 = DE @ inner
                    V = solve_gram(WtW * HtH, G2)
                    V, _ = normalize_columns(V)
                    V = V.astype(dtype, copy=False)

                # Round 3: Lemma 3 — shards update their W rows; the
                # criterion scalars come back with the same message.
                with trace.span("dpar2.sweep_phase3"):
                    VtV = V.T @ V
                    EDtV = np.multiply(D.T @ V, E[:, None])
                    VtD = V.astype(np.float64, copy=False).T @ D.astype(
                        np.float64, copy=False
                    )
                    gram3 = VtV * HtH
                    phase3 = _merge_cells(
                        runner.call("sweep_phase3", EDtV, gram3, VtD, VtV, H)
                    )
                    cross = _sum_cell_scalars(phase3, item=0)
                    model = _sum_cell_scalars(phase3, item=1)
                    error_sq = max(data_term - 2.0 * cross + model, 0.0)

                sweep_seconds = time.perf_counter() - sweep_start
                history.append(IterationRecord(iteration, error_sq, sweep_seconds))
                m_sweeps.inc()
                m_sweep_seconds.observe(sweep_seconds)
                m_allreduce.inc(runner.bytes_transferred - bytes_at_sweep_start)
                if prev_error is not None:
                    m_fitness_delta.set(prev_error - float(error_sq))
                prev_error = float(error_sq)
                sweep_span.annotate(error_sq=prev_error)
                if monitor.update(error_sq):
                    converged = True
                    break
        iterate_seconds = time.perf_counter() - iterate_start
        sweep_bytes = runner.bytes_transferred - bytes_before_sweeps

        # One-time gather of the factor rows and Qk blocks.
        gathered = _merge_cells(runner.call("finalize", R))
        fault_stats = runner.fault_stats

    W_out = np.empty((K, R), dtype=dtype)
    Q: list[np.ndarray | None] = [None] * K
    for cell_id, (W_cell, Q_cell) in gathered.items():
        indices = plan.cells[cell_id]
        W_out[list(indices)] = W_cell
        for pos, k in enumerate(indices):
            Q[k] = Q_cell[pos]

    n_sweeps = max(len(history), 1)
    stats = {
        "sharding": {
            **plan.describe(),
            "backend": config.shard_backend,
            "requested_shards": config.shards,
            "allreduce_bytes_total": int(sweep_bytes),
            "allreduce_bytes_per_sweep": sweep_bytes / n_sweeps,
            "allreduce_bytes_per_sweep_per_shard": (
                sweep_bytes / n_sweeps / plan.n_shards
            ),
            "worker_restarts": fault_stats["worker_restarts"],
            "faults": fault_stats,
        }
    }

    return Parafac2Result(
        Q=Q,
        H=H,
        S=W_out,
        V=V,
        method="dpar2",
        n_iterations=iteration,
        converged=converged,
        preprocess_seconds=preprocess_seconds,
        iterate_seconds=iterate_seconds,
        preprocessed_bytes=preprocessed_bytes,
        history=history,
        stats=stats,
    )
