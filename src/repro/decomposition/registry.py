"""Solver registry — the experiment harness sweeps methods by name."""

from __future__ import annotations

from typing import Callable

from repro.decomposition.dpar2 import dpar2
from repro.decomposition.parafac2_als import parafac2_als
from repro.decomposition.rd_als import rd_als
from repro.decomposition.spartan import spartan

#: Name → solver callable, in the order the paper's legends list them.
SOLVERS: dict[str, Callable] = {
    "dpar2": dpar2,
    "rd_als": rd_als,
    "parafac2_als": parafac2_als,
    "spartan": spartan,
}

#: Pretty names used in rendered tables (matching the paper's legends).
DISPLAY_NAMES: dict[str, str] = {
    "dpar2": "DPar2",
    "rd_als": "RD-ALS",
    "parafac2_als": "PARAFAC2-ALS",
    "spartan": "SPARTan",
}


def get_solver(name: str) -> Callable:
    """Look up a solver by registry name (case-insensitive)."""
    key = name.lower().replace("-", "_")
    if key not in SOLVERS:
        raise KeyError(
            f"unknown solver {name!r}; available: {', '.join(sorted(SOLVERS))}"
        )
    return SOLVERS[key]
