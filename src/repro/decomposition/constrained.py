"""Constrained DPar2 — COPA-style constraints on the compressed iteration.

The paper's related work (COPA [12]) shows that practical PARAFAC2 pipelines
often need constrained factors: non-negative weights for interpretability,
temporally smooth factors for longitudinal data.  COPA implements these for
*sparse* inputs; this module grafts the same two constraints onto DPar2's
compressed iteration, preserving its O(JR² + KR³) sweep cost:

* ``nonnegative_weights`` — after each ``W`` update, project onto the
  non-negative orthant (projected ALS).  ``Sk = diag(W(k, :)) ≥ 0`` makes
  slice weights read as intensities.
* ``smooth_v`` — ridge-style smoothing of ``V`` updates toward the previous
  iterate (proximal term), damping oscillation on noisy features.

Both default to off, in which case the solver matches :func:`dpar2` exactly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.cp_als import normalize_columns
from repro.decomposition.dpar2 import (
    CompressedTensor,
    _batched_polar,
    _compressed_error,
    compress_tensor,
)
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.linalg.pinv import solve_gram
from repro.parallel.backends import get_backend
from repro.tensor.irregular import IrregularTensor
from repro.tensor.products import hadamard
from repro.util.config import DecompositionConfig


def project_nonnegative(matrix: np.ndarray) -> np.ndarray:
    """Euclidean projection onto the non-negative orthant."""
    return np.clip(matrix, 0.0, None)


def constrained_dpar2(
    tensor: IrregularTensor,
    config: DecompositionConfig | None = None,
    *,
    nonnegative_weights: bool = False,
    smooth_v: float = 0.0,
    compressed: CompressedTensor | None = None,
    **overrides,
) -> Parafac2Result:
    """DPar2 with optional COPA-style constraints.

    Parameters
    ----------
    tensor:
        The irregular input ``{Xk}``.
    config:
        Shared hyper-parameters; keyword overrides apply on top.
    nonnegative_weights:
        Project ``W`` (hence every ``Sk``) onto the non-negative orthant
        after its least-squares update.
    smooth_v:
        Proximal weight ``µ ≥ 0``: each ``V`` update solves
        ``min ‖Y(2) − V (W ⊙ H)ᵀ‖² + µ‖V − V_prev‖²``, i.e. the normal
        matrix gains ``µ I`` and the right-hand side gains ``µ V_prev``.
    compressed:
        Optional precomputed :func:`compress_tensor` result.

    Returns
    -------
    Parafac2Result
        With ``method`` set to ``"constrained_dpar2"``.
    """
    config = (config or DecompositionConfig()).with_(**overrides)
    if smooth_v < 0:
        raise ValueError(f"smooth_v must be >= 0, got {smooth_v}")
    if not isinstance(tensor, IrregularTensor):
        tensor = IrregularTensor(tensor)
    R = min(config.rank, tensor.n_columns, min(tensor.row_counts))

    # One backend serves compression and every sweep's polar SVDs (so a
    # process pool forks once); closed on every exit path below.
    engine = get_backend(config.backend, config.n_threads)
    try:
        if compressed is None:
            compressed = compress_tensor(
                tensor,
                R,
                oversampling=config.oversampling,
                power_iterations=config.power_iterations,
                random_state=config.random_state,
                backend=engine,
            )
        elif compressed.rank < R:
            raise ValueError(
                f"precomputed compression has rank {compressed.rank} < target {R}"
            )

        D, E, F = compressed.D, compressed.E, compressed.F_blocks
        K = compressed.n_slices
        init = initialize_factors(tensor.n_columns, K, R, config.random_state)
        H, V, W = init.H, init.V, init.W

        FE = F * E
        data_term = float(np.sum(FE * FE))
        monitor = ConvergenceMonitor(config.tolerance)
        history: list[IterationRecord] = []
        converged = False
        iteration = 0
        polar = None

        start = time.perf_counter()
        for iteration in range(1, config.max_iterations + 1):
            sweep_start = time.perf_counter()
            EDtV = (D.T @ V) * E[:, None]
            small = np.einsum("kij,jr,kr,sr->kis", F, EDtV, W, H, optimize=True)
            polar = _batched_polar(small, config.n_threads, backend=engine)
            T = np.einsum("kji,kjs->kis", polar, F, optimize=True)

            G1 = np.einsum("kr,kij,jr->ir", W, T, EDtV, optimize=True)
            H = solve_gram(hadamard(W.T @ W, V.T @ V), G1)
            H, _ = normalize_columns(H)

            inner = np.einsum("kr,kji,jr->ir", W, T, H, optimize=True)
            G2 = (D * E) @ inner
            gram_v = hadamard(W.T @ W, H.T @ H)
            if smooth_v > 0:
                # Proximal/ridge update toward the previous V.
                gram_v = gram_v + smooth_v * np.eye(R)
                G2 = G2 + smooth_v * V
            V = solve_gram(gram_v, G2)
            V, _ = normalize_columns(V)

            EDtV = (D.T @ V) * E[:, None]
            G3 = np.einsum("ir,kij,jr->kr", H, T, EDtV, optimize=True)
            W = solve_gram(hadamard(V.T @ V, H.T @ H), G3)
            if nonnegative_weights:
                W = project_nonnegative(W)

            error_sq = _compressed_error(T, E, data_term, D, H, V, W)
            history.append(
                IterationRecord(iteration, error_sq, time.perf_counter() - sweep_start)
            )
            if monitor.update(error_sq):
                converged = True
                break
        iterate_seconds = time.perf_counter() - start
    finally:
        engine.close()

    Z_Pt = (
        polar
        if polar is not None
        else np.tile(np.eye(compressed.rank, R), (K, 1, 1))
    )
    Q = [compressed.A[k] @ Z_Pt[k] for k in range(K)]
    return Parafac2Result(
        Q=Q,
        H=H,
        S=W,
        V=V,
        method="constrained_dpar2",
        n_iterations=iteration,
        converged=converged,
        preprocess_seconds=compressed.seconds,
        iterate_seconds=iterate_seconds,
        preprocessed_bytes=compressed.nbytes,
        history=history,
    )
