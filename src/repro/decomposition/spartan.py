"""SPARTan — slice-parallel MTTKRP PARAFAC2 [Perros et al., KDD'17].

SPARTan's contribution is computing the three MTTKRPs of the inner CP step
slice-by-slice (never materializing the stacked tensor ``Y`` or a Khatri–Rao
product) and parallelizing every per-slice stage over ``K``.  Its efficiency
on *sparse* data additionally comes from sparse ``Qkᵀ Xk`` products; on
dense inputs — the adaptation the paper benchmarks — each sweep still pays
the full ``O(Σk Ik J R)`` slice work, which is why its iteration times track
PARAFAC2-ALS in Fig. 9(b).

This implementation accepts both dense slices and this library's
:class:`~repro.sparse.csr.CsrMatrix` slices through one code path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.cp_als import normalize_columns, slice_mttkrp
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.linalg.pinv import solve_gram
from repro.parallel.backends import get_backend
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import slice_squared_norm
from repro.tensor.irregular import IrregularTensor
from repro.tensor.products import hadamard
from repro.util.config import DecompositionConfig
from repro.util.validation import check_matrix


def _slice_matmul(Xk, dense: np.ndarray) -> np.ndarray:
    """``Xk @ dense`` for a dense ndarray or CSR slice."""
    if isinstance(Xk, CsrMatrix):
        return Xk.matmul_dense(dense)
    return Xk @ dense


def _slice_rmatmul(Xk, dense: np.ndarray) -> np.ndarray:
    """``denseᵀ @ Xk`` for a dense ndarray or CSR slice."""
    if isinstance(Xk, CsrMatrix):
        return Xk.rmatmul_dense(dense)
    return dense.T @ Xk


def _slice_update_task(item) -> tuple[np.ndarray, np.ndarray]:
    """``(Qk, Yk)`` for one slice — SPARTan's per-slice sweep stage.

    Module-level so the process backend can pickle it.  Dense slices travel
    through shared memory; :class:`CsrMatrix` slices fall back to pickle
    (their payload is the compressed arrays, already small).
    """
    Xk, target = item
    Z, _, Pt = np.linalg.svd(_slice_matmul(Xk, target), full_matrices=False)
    Qk = Z @ Pt
    return Qk, _slice_rmatmul(Xk, Qk)  # Yk = Qkᵀ Xk


def spartan(
    tensor,
    config: DecompositionConfig | None = None,
    **overrides,
) -> Parafac2Result:
    """Fit PARAFAC2 with SPARTan's slice-parallel formulation.

    Parameters
    ----------
    tensor:
        An :class:`IrregularTensor`, or a plain list of slices where each
        slice is a dense array or a :class:`CsrMatrix` (all sharing ``J``).
    config:
        Shared hyper-parameters (``n_threads``/``backend`` control the
        slice-level worker pool; slices are dealt uniformly, matching
        SPARTan's own scheduling rather than DPar2's Algorithm 4).
    """
    config = (config or DecompositionConfig()).with_(**overrides)
    if isinstance(tensor, IrregularTensor):
        slices = list(tensor.slices)
        n_columns = tensor.n_columns
        input_bytes = tensor.nbytes
    else:
        slices = [
            Xk if isinstance(Xk, CsrMatrix) else check_matrix(Xk, f"slices[{idx}]")
            for idx, Xk in enumerate(tensor)
        ]
        if not slices:
            raise ValueError("tensor must contain at least one slice")
        n_columns = slices[0].shape[1]
        for idx, Xk in enumerate(slices):
            if Xk.shape[1] != n_columns:
                raise ValueError(
                    f"slice {idx} has {Xk.shape[1]} columns, expected {n_columns}"
                )
        input_bytes = sum(
            Xk.data.nbytes + Xk.indices.nbytes + Xk.indptr.nbytes
            if isinstance(Xk, CsrMatrix)
            else Xk.nbytes
            for Xk in slices
        )
    K = len(slices)
    row_counts = [Xk.shape[0] for Xk in slices]
    R = min(config.rank, n_columns, min(row_counts))

    init = initialize_factors(n_columns, K, R, config.random_state)
    H, V, W = init.H, init.V, init.W
    slice_norms_sq = np.array([slice_squared_norm(Xk) for Xk in slices])

    monitor = ConvergenceMonitor(config.tolerance)
    history: list[IterationRecord] = []
    converged = False
    iteration = 0
    Q: list[np.ndarray] = [None] * K

    start = time.perf_counter()
    with get_backend(config.backend, config.n_threads) as engine:
        for iteration in range(1, config.max_iterations + 1):
            sweep_start = time.perf_counter()
            items = [(slices[k], (V * W[k]) @ H.T) for k in range(K)]
            pairs = engine.map(_slice_update_task, items)
            Q = [Qk for Qk, _ in pairs]
            Y_slices = [Yk for _, Yk in pairs]

            # One CP sweep via slice-wise MTTKRP (no Y materialization).
            H = solve_gram(
                hadamard(W.T @ W, V.T @ V), slice_mttkrp(Y_slices, H, V, W, mode=1)
            )
            H, _ = normalize_columns(H)
            V = solve_gram(
                hadamard(W.T @ W, H.T @ H), slice_mttkrp(Y_slices, H, V, W, mode=2)
            )
            V, _ = normalize_columns(V)
            W = solve_gram(
                hadamard(V.T @ V, H.T @ H), slice_mttkrp(Y_slices, H, V, W, mode=3)
            )

            VtV = V.T @ V
            error_sq = 0.0
            for k, Yk in enumerate(Y_slices):
                M_left = H * W[k]
                cross = float(np.sum((Yk @ V) * M_left))
                model_sq = float(np.sum((M_left.T @ M_left) * VtV))
                error_sq += float(slice_norms_sq[k]) - 2.0 * cross + model_sq
            error_sq = max(error_sq, 0.0)

            history.append(
                IterationRecord(iteration, error_sq, time.perf_counter() - sweep_start)
            )
            if monitor.update(error_sq):
                converged = True
                break
    iterate_seconds = time.perf_counter() - start

    if Q and Q[0] is None:
        # Zero sweeps (``max_iterations=0``): factors from the initialization.
        Q = [_slice_update_task((slices[k], (V * W[k]) @ H.T))[0] for k in range(K)]

    return Parafac2Result(
        Q=Q,
        H=H,
        S=W,
        V=V,
        method="spartan",
        n_iterations=iteration,
        converged=converged,
        preprocess_seconds=0.0,
        iterate_seconds=iterate_seconds,
        preprocessed_bytes=input_bytes,
        history=history,
    )
