"""Streaming DPar2 — the paper's stated future work (Section VI).

"Future work includes devising an efficient PARAFAC2 decomposition method
in a streaming setting."  This module provides that extension on top of
DPar2's compressed representation, in the spirit of SPADE [48]:

* new slices arrive over time (new stocks listing, new songs ingested);
* each arrival is compressed **once** with a randomized SVD (stage 1) —
  the raw slice is never needed again;
* the shared stage-2 basis ``D`` is *grown* incrementally: the new slice's
  ``Ck Bk`` is split into the part explained by the current basis and an
  orthogonal residual; when the residual carries significant energy the
  basis is expanded and re-truncated to rank ``R`` via an SVD of the small
  ``(R + R_new) x (KR)`` coefficient matrix — never touching old slices;
* factor matrices are refreshed with a handful of warm-started DPar2
  sweeps, reusing the previous ``H``, ``V``, ``W`` as initialization.

The update cost per arriving slice is ``O(Ik J R + (K R) R²)`` — independent
of the *rows* of all previously absorbed slices, which is the property a
streaming method needs.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.decomposition.dpar2 import (
    _BATCH_MAX_ROWS,
    CompressedTensor,
    _compress_slice_task,
    dpar2,
)
from repro.decomposition.result import Parafac2Result
from repro.linalg.array_module import get_xp
from repro.linalg.kernels import batched_randomized_svd
from repro.linalg.randomized_svd import randomized_svd
from repro.parallel.backends import get_backend, in_process_backend
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import check_finite_csr
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig
from repro.util.rng import as_generator, spawn_generators
from repro.util.validation import check_matrix


def _check_stream_slice(slice_matrix, name: str, dtype):
    """Validate one incoming slice: dense arrays canonicalized, CSR kept.

    CSR slices get the same finiteness rejection dense slices do, then
    pass through with their values cast to the stream dtype — they feed
    the sparse randomized-SVD path and are never densified.
    """
    if isinstance(slice_matrix, CsrMatrix):
        return check_finite_csr(slice_matrix, name).astype(dtype)
    return check_matrix(slice_matrix, name, dtype=dtype)


def _pad_columns(array: np.ndarray, width: int) -> np.ndarray:
    """Zero-pad ``array`` on the right to ``width`` columns (no-op if wide).

    A slice shorter than the model rank yields a stage-1 factorization of
    lower rank; padding keeps every per-slice block the same width so the
    shared-basis bookkeeping (and :meth:`StreamingDpar2.compressed`) stays
    rectangular.  The padded directions carry zero energy, so the model is
    unchanged.
    """
    missing = width - array.shape[1]
    if missing <= 0:
        return array
    return np.pad(array, ((0, 0), (0, missing)))


class StreamingDpar2:
    """Incrementally maintained DPar2 model over a growing slice stream.

    Parameters
    ----------
    config:
        Shared hyper-parameters; ``config.rank`` is the model rank ``R``.
    residual_threshold:
        Fraction of a new slice's ``Ck Bk`` energy that may be dropped
        without expanding the shared basis ``D``.  Smaller values track the
        stream more faithfully at the cost of more basis updates.
    refresh_iterations:
        Warm-started ALS sweeps run after each ``absorb``.

    Example
    -------
    >>> import numpy as np
    >>> from repro.util.config import DecompositionConfig
    >>> stream = StreamingDpar2(DecompositionConfig(rank=3, random_state=0))
    >>> rng = np.random.default_rng(0)
    >>> for _ in range(4):
    ...     stream.absorb(rng.random((20, 10)))
    >>> stream.n_slices
    4
    >>> result = stream.result()
    >>> result.V.shape
    (10, 3)
    """

    def __init__(
        self,
        config: DecompositionConfig | None = None,
        *,
        residual_threshold: float = 0.05,
        refresh_iterations: int = 5,
    ) -> None:
        self.config = config or DecompositionConfig()
        if not 0.0 <= residual_threshold < 1.0:
            raise ValueError(
                f"residual_threshold must be in [0, 1), got {residual_threshold}"
            )
        if refresh_iterations < 0:
            raise ValueError(
                f"refresh_iterations must be >= 0, got {refresh_iterations}"
            )
        self.residual_threshold = residual_threshold
        self.refresh_iterations = refresh_iterations
        self._rng = as_generator(self.config.random_state)
        self._dtype = self.config.numpy_dtype

        # Compressed state: Ak per slice, shared D (J x R), and the
        # coefficient matrix G = [G1; ...; GK] with Gk = coefficients of
        # (Ck Bk) in the D basis, i.e. Ck Bk ≈ D Gk  (Gk is R x R).
        self._A: list[np.ndarray] = []
        self._D: np.ndarray | None = None
        self._G: list[np.ndarray] = []
        self._n_columns: int | None = None
        self._last_result: Parafac2Result | None = None

    # ------------------------------------------------------------------ #
    # stream ingestion
    # ------------------------------------------------------------------ #

    @property
    def n_slices(self) -> int:
        return len(self._A)

    @property
    def rank(self) -> int:
        return self.config.rank

    def absorb(self, slice_matrix, *, refresh: bool = True) -> None:
        """Ingest one new slice ``Xk`` into the compressed model.

        The slice is stage-1 compressed immediately; the shared basis is
        updated if the slice's right factor has enough energy outside the
        current span.  With ``refresh=False`` the factor refresh is skipped
        (batch several absorbs, then call :meth:`result`).  A
        :class:`~repro.sparse.csr.CsrMatrix` slice is sketched through the
        sparse SpMM path and never densified (numpy compute backend only).
        """
        Xk = _check_stream_slice(slice_matrix, "slice_matrix", self._dtype)
        if self._n_columns is None:
            self._n_columns = Xk.shape[1]
        elif Xk.shape[1] != self._n_columns:
            raise ValueError(
                f"slice has {Xk.shape[1]} columns, stream has {self._n_columns}"
            )
        R = min(self.config.rank, *Xk.shape)

        stage1 = randomized_svd(
            Xk,
            R,
            oversampling=self.config.oversampling,
            power_iterations=self.config.power_iterations,
            random_state=self._rng,
            xp=self.config.compute_backend,
        )
        self._absorb_stage1(stage1)

        self._last_result = None
        if refresh:
            self._refresh()

    def _absorb_stage1(self, stage1) -> None:
        """Fold one slice's stage-1 factors into the shared-basis state.

        Blocks are padded to the stream-wide width so slices whose own rank
        ran below the model rank (rows < R) keep the bookkeeping
        rectangular.
        """
        width = min(self.config.rank, self._n_columns)
        self._A.append(_pad_columns(stage1.U, width))
        CB = _pad_columns(stage1.V * stage1.singular_values, width)  # J x width

        if self._D is None:
            # First slice seeds the basis directly.
            Q, coeff = np.linalg.qr(CB)
            self._D = Q
            self._G.append(coeff)
        else:
            self._absorb_right_factor(CB)

    def absorb_many(self, slices, *, refresh: bool = True) -> None:
        """Ingest a batch of slices, stage-1 compressing them in parallel.

        On an in-process backend (serial/thread) the batch is stage-1
        compressed through the stacked kernels of
        :func:`~repro.linalg.kernels.batched_randomized_svd` — one batched
        LAPACK pipeline per equal-row-count bucket.  On the process backend
        the per-slice randomized SVDs are distributed over
        ``config.n_threads`` workers with Algorithm-4 load balancing.  Each
        slice gets a private spawned generator, so the model state is
        identical either way and independent of the worker schedule —
        though it differs from absorbing the same slices one by one, which
        draws from the stream's generator sequentially.

        With ``refresh=False`` the factor refresh is skipped (call
        :meth:`result` when done batching).

        When ``config.shards`` is set the batch is stage-1 compressed
        through the shard coordinator instead
        (:func:`~repro.decomposition.sharded.sharded_stage1`): each shard
        sketches the cells it owns and the full per-slice factors are
        gathered back into this stream's state.  The private per-slice
        generators make the result bitwise-identical to the in-process
        batched path for dense slices, and invariant to the shard count
        for all slice types; the refresh solve shards automatically
        through :func:`~repro.decomposition.dpar2.dpar2`.
        """
        matrices = [
            _check_stream_slice(Xk, f"slices[{idx}]", self._dtype)
            for idx, Xk in enumerate(slices)
        ]
        if not matrices:
            return
        n_columns = (
            self._n_columns if self._n_columns is not None else matrices[0].shape[1]
        )
        for idx, Xk in enumerate(matrices):
            if Xk.shape[1] != n_columns:
                raise ValueError(
                    f"slices[{idx}] has {Xk.shape[1]} columns, "
                    f"stream has {n_columns}"
                )
        self._n_columns = n_columns

        generators = spawn_generators(self._rng, len(matrices))
        if self.config.shards is not None:
            from repro.decomposition.sharded import sharded_stage1

            stage1 = sharded_stage1(
                matrices,
                generators,
                rank=self.config.rank,
                oversampling=self.config.oversampling,
                power_iterations=self.config.power_iterations,
                n_shards=self.config.shards,
                shard_backend=self.config.shard_backend,
                n_cells=self.config.shard_cells,
            )
            for svd in stage1:
                self._absorb_stage1(svd)
            self._last_result = None
            if refresh:
                self._refresh()
            return
        xp = get_xp(self.config.compute_backend)
        with get_backend(self.config.backend, self.config.n_threads) as engine:
            if not xp.is_numpy:
                engine = in_process_backend(engine)
            # Same routing rule as compress_tensor: stacked dispatch only
            # when it cannot lose — single worker, slices small enough
            # that Python/LAPACK dispatch (not FLOPs) dominates, or a
            # device backend (whose throughput comes from big stacked
            # launches).  Tall slices on a multi-worker thread backend
            # keep the per-slice partitioned path and its parallel
            # speedup.
            any_sparse = any(isinstance(Xk, CsrMatrix) for Xk in matrices)
            batch = (
                any_sparse  # SpMM buckets: dispatch-bound at any height
                or not xp.is_numpy
                or (
                    engine.in_process
                    and (
                        engine.n_workers == 1
                        or max(Xk.shape[0] for Xk in matrices) <= _BATCH_MAX_ROWS
                    )
                )
            )
            if batch:
                stage1 = batched_randomized_svd(
                    matrices,
                    self.config.rank,
                    oversampling=self.config.oversampling,
                    power_iterations=self.config.power_iterations,
                    generators=generators,
                    xp=xp,
                )
            else:
                task = partial(
                    _compress_slice_task,
                    rank=self.config.rank,
                    oversampling=self.config.oversampling,
                    power_iterations=self.config.power_iterations,
                )
                stage1 = engine.map_partitioned(
                    task,
                    list(zip(matrices, generators)),
                    weights=[Xk.shape[0] for Xk in matrices],
                )

        for svd in stage1:
            self._absorb_stage1(svd)

        self._last_result = None
        if refresh:
            self._refresh()

    def _absorb_right_factor(self, CB: np.ndarray) -> None:
        """Grow/rotate the shared basis ``D`` to cover a new ``Ck Bk``."""
        D = self._D
        coeff = D.T @ CB                       # r x R, explained part
        residual = CB - D @ coeff              # J x R, orthogonal part
        res_energy = float(np.sum(residual**2))
        total_energy = float(np.sum(CB**2))

        if total_energy == 0.0 or res_energy <= self.residual_threshold * total_energy:
            self._G.append(coeff)
            return

        # Expand the basis with the residual's orthonormal directions, then
        # re-truncate everything to rank R with an SVD of the (small)
        # stacked coefficient matrix.
        Q_new, r_new = np.linalg.qr(residual)
        keep = np.abs(np.diag(r_new)) > 1e-12
        Q_new = Q_new[:, keep]
        D_ext = np.concatenate([D, Q_new], axis=1)        # J x (r + r')

        # Old coefficients padded with zero rows; the new slice's coefficients.
        extra = Q_new.shape[1]
        padded = [
            np.concatenate([Gk, np.zeros((extra, Gk.shape[1]), dtype=Gk.dtype)], axis=0)
            for Gk in self._G
        ]
        new_coeff = np.concatenate([coeff, Q_new.T @ CB], axis=0)
        padded.append(new_coeff)

        stacked = np.concatenate(padded, axis=1)          # (r+r') x (K R)
        U, _, _ = np.linalg.svd(stacked, full_matrices=False)
        R = min(self.config.rank, U.shape[1])
        rotation = U[:, :R]                               # (r+r') x R

        self._D = D_ext @ rotation                        # J x R
        self._G = [rotation.T @ Gk for Gk in padded]

    # ------------------------------------------------------------------ #
    # model access
    # ------------------------------------------------------------------ #

    def compressed(self) -> CompressedTensor:
        """Snapshot of the stream as a :class:`CompressedTensor`.

        The stage-2 structure ``D E Fᵀ`` is recovered from the maintained
        ``(D, {Gk})`` pair by one SVD of the small stacked coefficients.
        """
        if not self._A:
            raise RuntimeError("no slices absorbed yet")
        stacked = np.concatenate(self._G, axis=1)  # r x (K R)
        U, s, Vt = np.linalg.svd(stacked, full_matrices=False)
        R = min(self.config.rank, s.shape[0])
        D = self._D @ U[:, :R]
        E = s[:R]
        R_slice = self._G[0].shape[1]
        F_blocks = np.stack(
            [
                Vt[:R, k * R_slice : (k + 1) * R_slice].T
                for k in range(self.n_slices)
            ]
        )
        # Pad A / F blocks if slice rank ran below R (tiny early slices).
        A = list(self._A)
        if F_blocks.shape[2] < R:
            pad = R - F_blocks.shape[2]
            F_blocks = np.pad(F_blocks, ((0, 0), (0, 0), (0, pad)))
            A = [np.pad(Ak, ((0, 0), (0, pad))) for Ak in A]
        return CompressedTensor(A=A, D=D, E=E, F_blocks=F_blocks, seconds=0.0)

    def result(self) -> Parafac2Result:
        """The current PARAFAC2 model (refreshing factors if needed)."""
        if self._last_result is None:
            self._refresh()
        return self._last_result

    def _refresh(self) -> None:
        compressed = self.compressed()
        # Reconstruct approximate slices only for the result container's
        # bookkeeping — iteration uses the compressed form throughout.
        tensor = IrregularTensor(
            [compressed.reconstruct_slice(k) for k in range(self.n_slices)],
            copy=False,
            dtype=self._dtype,
        )
        config = self.config.with_(
            max_iterations=max(self.refresh_iterations, 1)
        )
        self._last_result = dpar2(tensor, config, compressed=compressed)

    def fitness(self, tensor: IrregularTensor) -> float:
        """Fitness of the current model against externally held raw slices."""
        return self.result().fitness(tensor)

    def publish_to(self, store, *, extra: dict | None = None) -> int:
        """Publish the current model as a new registry version.

        ``store`` is a :class:`~repro.serve.store.FactorStore`.  The model
        is refreshed if needed (see :meth:`result`) and published with the
        stream's config, so a serving process polling the registry picks up
        online updates as immutable, hot-swappable snapshots — absorb new
        slices, publish, and the query layer follows without restarts.
        Returns the new version number.
        """
        meta = {"source": "streaming", "n_slices": self.n_slices}
        meta.update(extra or {})
        return store.publish(self.result(), config=self.config, extra=meta)
