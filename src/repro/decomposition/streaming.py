"""Streaming DPar2 — the paper's stated future work (Section VI).

"Future work includes devising an efficient PARAFAC2 decomposition method
in a streaming setting."  This module provides that extension on top of
DPar2's compressed representation, in the spirit of SPADE [48]:

* new slices arrive over time (new stocks listing, new songs ingested);
* each arrival is compressed **once** with a randomized SVD (stage 1) —
  the raw slice is never needed again;
* the shared stage-2 basis ``D`` is *grown* incrementally: the new slice's
  ``Ck Bk`` is split into the part explained by the current basis and an
  orthogonal residual; when the residual carries significant energy the
  basis is expanded and re-truncated to rank ``R`` via an SVD of the small
  ``(R + R_new) x (KR)`` coefficient matrix — never touching old slices;
* factor matrices are refreshed with a handful of warm-started DPar2
  sweeps, reusing the previous ``H``, ``V``, ``W`` as initialization.

The update cost per arriving slice is ``O(Ik J R + (K R) R²)`` — independent
of the *rows* of all previously absorbed slices, which is the property a
streaming method needs.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from functools import partial
from pathlib import Path

import numpy as np

from repro.decomposition.dpar2 import (
    _BATCH_MAX_ROWS,
    CompressedTensor,
    _compress_slice_task,
    dpar2,
)
from repro.decomposition.result import Parafac2Result
from repro.linalg.array_module import get_xp
from repro.linalg.kernels import batched_randomized_svd
from repro.linalg.randomized_svd import randomized_svd
from repro.obs import trace
from repro.obs.metrics import get_registry
from repro.parallel.backends import get_backend, in_process_backend
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import check_finite_csr
from repro.tensor.irregular import IrregularTensor
from repro.util import faults
from repro.util.config import DecompositionConfig
from repro.util.rng import as_generator, spawn_generators
from repro.util.validation import check_matrix

_CHECKPOINT_LATEST = "LATEST"
_CHECKPOINT_FORMAT = 1


def _checkpoint_name(seq: int) -> str:
    return f"ckpt-{seq:07d}"


def _check_stream_slice(slice_matrix, name: str, dtype):
    """Validate one incoming slice: dense arrays canonicalized, CSR kept.

    CSR slices get the same finiteness rejection dense slices do, then
    pass through with their values cast to the stream dtype — they feed
    the sparse randomized-SVD path and are never densified.
    """
    if isinstance(slice_matrix, CsrMatrix):
        return check_finite_csr(slice_matrix, name).astype(dtype)
    return check_matrix(slice_matrix, name, dtype=dtype)


def _pad_columns(array: np.ndarray, width: int) -> np.ndarray:
    """Zero-pad ``array`` on the right to ``width`` columns (no-op if wide).

    A slice shorter than the model rank yields a stage-1 factorization of
    lower rank; padding keeps every per-slice block the same width so the
    shared-basis bookkeeping (and :meth:`StreamingDpar2.compressed`) stays
    rectangular.  The padded directions carry zero energy, so the model is
    unchanged.
    """
    missing = width - array.shape[1]
    if missing <= 0:
        return array
    return np.pad(array, ((0, 0), (0, missing)))


class StreamingDpar2:
    """Incrementally maintained DPar2 model over a growing slice stream.

    Parameters
    ----------
    config:
        Shared hyper-parameters; ``config.rank`` is the model rank ``R``.
    residual_threshold:
        Fraction of a new slice's ``Ck Bk`` energy that may be dropped
        without expanding the shared basis ``D``.  Smaller values track the
        stream more faithfully at the cost of more basis updates.
    refresh_iterations:
        Warm-started ALS sweeps run after each ``absorb``.
    checkpoint_dir:
        When set, the stream writes atomic checkpoints (the
        :class:`~repro.serve.store.FactorStore` temp-dir-rename idiom)
        into this directory and :meth:`resume_from` can rebuild the
        stream after a crash — bitwise-identically, because the RNG's
        bit-generator state is saved and :meth:`absorb_many` chunks its
        batches by ``checkpoint_every`` whether or not a crash happens,
        so the generator-spawn sequence never depends on where a run was
        interrupted.
    checkpoint_every:
        Checkpoint after this many absorbed slices (0 disables automatic
        checkpoints; :meth:`checkpoint` can still be called manually).

    Example
    -------
    >>> import numpy as np
    >>> from repro.util.config import DecompositionConfig
    >>> stream = StreamingDpar2(DecompositionConfig(rank=3, random_state=0))
    >>> rng = np.random.default_rng(0)
    >>> for _ in range(4):
    ...     stream.absorb(rng.random((20, 10)))
    >>> stream.n_slices
    4
    >>> result = stream.result()
    >>> result.V.shape
    (10, 3)
    """

    def __init__(
        self,
        config: DecompositionConfig | None = None,
        *,
        residual_threshold: float = 0.05,
        refresh_iterations: int = 5,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 2,
    ) -> None:
        self.config = config or DecompositionConfig()
        if not 0.0 <= residual_threshold < 1.0:
            raise ValueError(
                f"residual_threshold must be in [0, 1), got {residual_threshold}"
            )
        if refresh_iterations < 0:
            raise ValueError(
                f"refresh_iterations must be >= 0, got {refresh_iterations}"
            )
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if keep_checkpoints < 1:
            raise ValueError(
                f"keep_checkpoints must be >= 1, got {keep_checkpoints}"
            )
        self.residual_threshold = residual_threshold
        self.refresh_iterations = refresh_iterations
        self.checkpoint_dir = None if checkpoint_dir is None else Path(checkpoint_dir)
        self.checkpoint_every = int(checkpoint_every)
        self.keep_checkpoints = int(keep_checkpoints)
        self._rng = as_generator(self.config.random_state)
        self._dtype = self.config.numpy_dtype

        # Compressed state: Ak per slice, shared D (J x R), and the
        # coefficient matrix G = [G1; ...; GK] with Gk = coefficients of
        # (Ck Bk) in the D basis, i.e. Ck Bk ≈ D Gk  (Gk is R x R).
        self._A: list[np.ndarray] = []
        self._D: np.ndarray | None = None
        self._G: list[np.ndarray] = []
        self._n_columns: int | None = None
        self._last_result: Parafac2Result | None = None
        self._checkpoint_seq = 0
        self._absorbed_since_checkpoint = 0
        #: Durability counters, surfaced in ``result().stats["streaming"]``
        #: and in :meth:`publish_to` metadata.
        self.stats: dict = {
            "checkpoints_written": 0,
            "checkpoint_resumes": 0,
            "worker_restarts": 0,
        }

    @property
    def _auto_checkpoint(self) -> bool:
        return self.checkpoint_dir is not None and self.checkpoint_every > 0

    # ------------------------------------------------------------------ #
    # stream ingestion
    # ------------------------------------------------------------------ #

    @property
    def n_slices(self) -> int:
        return len(self._A)

    @property
    def rank(self) -> int:
        return self.config.rank

    def absorb(self, slice_matrix, *, refresh: bool = True) -> None:
        """Ingest one new slice ``Xk`` into the compressed model.

        The slice is stage-1 compressed immediately; the shared basis is
        updated if the slice's right factor has enough energy outside the
        current span.  With ``refresh=False`` the factor refresh is skipped
        (batch several absorbs, then call :meth:`result`).  A
        :class:`~repro.sparse.csr.CsrMatrix` slice is sketched through the
        sparse SpMM path and never densified (numpy compute backend only).
        """
        Xk = _check_stream_slice(slice_matrix, "slice_matrix", self._dtype)
        if self._n_columns is None:
            self._n_columns = Xk.shape[1]
        elif Xk.shape[1] != self._n_columns:
            raise ValueError(
                f"slice has {Xk.shape[1]} columns, stream has {self._n_columns}"
            )
        R = min(self.config.rank, *Xk.shape)

        with trace.span("streaming.absorb", slices=1):
            stage1 = randomized_svd(
                Xk,
                R,
                oversampling=self.config.oversampling,
                power_iterations=self.config.power_iterations,
                random_state=self._rng,
                xp=self.config.compute_backend,
            )
            self._absorb_stage1(stage1)
        get_registry().counter(
            "repro_streaming_absorbs_total", "Slices absorbed into the stream."
        ).inc()
        self._absorbed_since_checkpoint += 1
        if (
            self._auto_checkpoint
            and self._absorbed_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()

        self._last_result = None
        if refresh:
            self._refresh()

    def _absorb_stage1(self, stage1) -> None:
        """Fold one slice's stage-1 factors into the shared-basis state.

        Blocks are padded to the stream-wide width so slices whose own rank
        ran below the model rank (rows < R) keep the bookkeeping
        rectangular.
        """
        width = min(self.config.rank, self._n_columns)
        self._A.append(_pad_columns(stage1.U, width))
        CB = _pad_columns(stage1.V * stage1.singular_values, width)  # J x width

        if self._D is None:
            # First slice seeds the basis directly.
            Q, coeff = np.linalg.qr(CB)
            self._D = Q
            self._G.append(coeff)
        else:
            self._absorb_right_factor(CB)

    def absorb_many(self, slices, *, refresh: bool = True) -> None:
        """Ingest a batch of slices, stage-1 compressing them in parallel.

        On an in-process backend (serial/thread) the batch is stage-1
        compressed through the stacked kernels of
        :func:`~repro.linalg.kernels.batched_randomized_svd` — one batched
        LAPACK pipeline per equal-row-count bucket.  On the process backend
        the per-slice randomized SVDs are distributed over
        ``config.n_threads`` workers with Algorithm-4 load balancing.  Each
        slice gets a private spawned generator, so the model state is
        identical either way and independent of the worker schedule —
        though it differs from absorbing the same slices one by one, which
        draws from the stream's generator sequentially.

        With ``refresh=False`` the factor refresh is skipped (call
        :meth:`result` when done batching).

        When ``config.shards`` is set the batch is stage-1 compressed
        through the shard coordinator instead
        (:func:`~repro.decomposition.sharded.sharded_stage1`): each shard
        sketches the cells it owns and the full per-slice factors are
        gathered back into this stream's state.  The private per-slice
        generators make the result bitwise-identical to the in-process
        batched path for dense slices, and invariant to the shard count
        for all slice types; the refresh solve shards automatically
        through :func:`~repro.decomposition.dpar2.dpar2`.

        When automatic checkpointing is on (``checkpoint_dir`` +
        ``checkpoint_every``) the batch is processed in chunks of
        ``checkpoint_every`` slices with a checkpoint after each chunk —
        *always*, not only when something fails.  Chunking changes the
        generator-spawn sequence (each chunk draws once from the stream
        RNG), so making it unconditional is what keeps a crash-resumed
        run bitwise-identical to an uninterrupted one with the same
        cadence.
        """
        matrices = [
            _check_stream_slice(Xk, f"slices[{idx}]", self._dtype)
            for idx, Xk in enumerate(slices)
        ]
        if not matrices:
            return
        n_columns = (
            self._n_columns if self._n_columns is not None else matrices[0].shape[1]
        )
        for idx, Xk in enumerate(matrices):
            if Xk.shape[1] != n_columns:
                raise ValueError(
                    f"slices[{idx}] has {Xk.shape[1]} columns, "
                    f"stream has {n_columns}"
                )
        self._n_columns = n_columns

        m_absorbs = get_registry().counter(
            "repro_streaming_absorbs_total", "Slices absorbed into the stream."
        )
        chunk = self.checkpoint_every if self._auto_checkpoint else len(matrices)
        for start in range(0, len(matrices), chunk):
            faults.check("streaming.absorb")
            batch = matrices[start : start + chunk]
            with trace.span("streaming.absorb", slices=len(batch)):
                self._absorb_batch(batch)
            m_absorbs.inc(len(batch))
            self._absorbed_since_checkpoint += len(batch)
            if self._auto_checkpoint:
                self.checkpoint()

        self._last_result = None
        if refresh:
            self._refresh()

    def _absorb_batch(self, matrices: list) -> None:
        """Stage-1 compress one validated chunk and fold it into the state."""
        generators = spawn_generators(self._rng, len(matrices))
        if self.config.shards is not None:
            from repro.decomposition.sharded import sharded_stage1

            stage1 = sharded_stage1(
                matrices,
                generators,
                rank=self.config.rank,
                oversampling=self.config.oversampling,
                power_iterations=self.config.power_iterations,
                n_shards=self.config.shards,
                shard_backend=self.config.shard_backend,
                n_cells=self.config.shard_cells,
                fault_stats_out=self.stats,
            )
            for svd in stage1:
                self._absorb_stage1(svd)
            return
        xp = get_xp(self.config.compute_backend)
        with get_backend(self.config.backend, self.config.n_threads) as engine:
            if not xp.is_numpy:
                engine = in_process_backend(engine)
            # Same routing rule as compress_tensor: stacked dispatch only
            # when it cannot lose — single worker, slices small enough
            # that Python/LAPACK dispatch (not FLOPs) dominates, or a
            # device backend (whose throughput comes from big stacked
            # launches).  Tall slices on a multi-worker thread backend
            # keep the per-slice partitioned path and its parallel
            # speedup.
            any_sparse = any(isinstance(Xk, CsrMatrix) for Xk in matrices)
            batch = (
                any_sparse  # SpMM buckets: dispatch-bound at any height
                or not xp.is_numpy
                or (
                    engine.in_process
                    and (
                        engine.n_workers == 1
                        or max(Xk.shape[0] for Xk in matrices) <= _BATCH_MAX_ROWS
                    )
                )
            )
            if batch:
                stage1 = batched_randomized_svd(
                    matrices,
                    self.config.rank,
                    oversampling=self.config.oversampling,
                    power_iterations=self.config.power_iterations,
                    generators=generators,
                    xp=xp,
                )
            else:
                task = partial(
                    _compress_slice_task,
                    rank=self.config.rank,
                    oversampling=self.config.oversampling,
                    power_iterations=self.config.power_iterations,
                )
                stage1 = engine.map_partitioned(
                    task,
                    list(zip(matrices, generators)),
                    weights=[Xk.shape[0] for Xk in matrices],
                )

        for svd in stage1:
            self._absorb_stage1(svd)

    def _absorb_right_factor(self, CB: np.ndarray) -> None:
        """Grow/rotate the shared basis ``D`` to cover a new ``Ck Bk``."""
        D = self._D
        coeff = D.T @ CB                       # r x R, explained part
        residual = CB - D @ coeff              # J x R, orthogonal part
        res_energy = float(np.sum(residual**2))
        total_energy = float(np.sum(CB**2))

        if total_energy == 0.0 or res_energy <= self.residual_threshold * total_energy:
            self._G.append(coeff)
            return

        # Expand the basis with the residual's orthonormal directions, then
        # re-truncate everything to rank R with an SVD of the (small)
        # stacked coefficient matrix.
        Q_new, r_new = np.linalg.qr(residual)
        keep = np.abs(np.diag(r_new)) > 1e-12
        Q_new = Q_new[:, keep]
        D_ext = np.concatenate([D, Q_new], axis=1)        # J x (r + r')

        # Old coefficients padded with zero rows; the new slice's coefficients.
        extra = Q_new.shape[1]
        padded = [
            np.concatenate([Gk, np.zeros((extra, Gk.shape[1]), dtype=Gk.dtype)], axis=0)
            for Gk in self._G
        ]
        new_coeff = np.concatenate([coeff, Q_new.T @ CB], axis=0)
        padded.append(new_coeff)

        stacked = np.concatenate(padded, axis=1)          # (r+r') x (K R)
        U, _, _ = np.linalg.svd(stacked, full_matrices=False)
        R = min(self.config.rank, U.shape[1])
        rotation = U[:, :R]                               # (r+r') x R

        self._D = D_ext @ rotation                        # J x R
        self._G = [rotation.T @ Gk for Gk in padded]

    # ------------------------------------------------------------------ #
    # model access
    # ------------------------------------------------------------------ #

    def compressed(self) -> CompressedTensor:
        """Snapshot of the stream as a :class:`CompressedTensor`.

        The stage-2 structure ``D E Fᵀ`` is recovered from the maintained
        ``(D, {Gk})`` pair by one SVD of the small stacked coefficients.
        """
        if not self._A:
            raise RuntimeError("no slices absorbed yet")
        stacked = np.concatenate(self._G, axis=1)  # r x (K R)
        U, s, Vt = np.linalg.svd(stacked, full_matrices=False)
        R = min(self.config.rank, s.shape[0])
        D = self._D @ U[:, :R]
        E = s[:R]
        R_slice = self._G[0].shape[1]
        F_blocks = np.stack(
            [
                Vt[:R, k * R_slice : (k + 1) * R_slice].T
                for k in range(self.n_slices)
            ]
        )
        # Pad A / F blocks if slice rank ran below R (tiny early slices).
        A = list(self._A)
        if F_blocks.shape[2] < R:
            pad = R - F_blocks.shape[2]
            F_blocks = np.pad(F_blocks, ((0, 0), (0, 0), (0, pad)))
            A = [np.pad(Ak, ((0, 0), (0, pad))) for Ak in A]
        return CompressedTensor(A=A, D=D, E=E, F_blocks=F_blocks, seconds=0.0)

    # ------------------------------------------------------------------ #
    # durability: atomic checkpoints + resume
    # ------------------------------------------------------------------ #

    def checkpoint(self, directory=None) -> Path:
        """Write an atomic checkpoint of the stream state; return its path.

        Same idiom as :meth:`FactorStore.publish
        <repro.serve.store.FactorStore.publish>`: the state is staged
        into a hidden temp dir in the target directory, renamed into
        place (atomic on POSIX), and only then does the ``LATEST``
        pointer move — a crash at any instant leaves either the previous
        checkpoint or a complete new one, never a torn read.  The RNG's
        bit-generator state rides along, so a resumed stream continues
        the exact draw sequence.
        """
        base = Path(directory) if directory is not None else self.checkpoint_dir
        if base is None:
            raise RuntimeError(
                "no checkpoint directory: pass one here or set checkpoint_dir"
            )
        base.mkdir(parents=True, exist_ok=True)
        seq = self._checkpoint_seq + 1
        stats = dict(self.stats)
        stats["checkpoints_written"] = stats.get("checkpoints_written", 0) + 1
        state = {
            "format": _CHECKPOINT_FORMAT,
            "seq": seq,
            "config": self.config.to_dict(),
            "residual_threshold": self.residual_threshold,
            "refresh_iterations": self.refresh_iterations,
            "checkpoint_every": self.checkpoint_every,
            "keep_checkpoints": self.keep_checkpoints,
            "n_columns": self._n_columns,
            "n_slices": self.n_slices,
            "rng_state": self._rng.bit_generator.state,
            "stats": stats,
        }
        t0 = time.perf_counter()
        with trace.span("streaming.checkpoint", seq=seq, slices=self.n_slices):
            staging = Path(tempfile.mkdtemp(prefix=".ckpt-", dir=base))
            try:
                if self._D is not None:
                    np.save(staging / "D.npy", self._D)
                for k, (Ak, Gk) in enumerate(zip(self._A, self._G)):
                    np.save(staging / f"A_{k:06d}.npy", Ak)
                    np.save(staging / f"G_{k:06d}.npy", Gk)
                # state.json last: its presence marks the staging dir complete.
                (staging / "state.json").write_text(json.dumps(state))
                faults.check("streaming.checkpoint.staged")
                target = base / _checkpoint_name(seq)
                staging.rename(target)
            except BaseException:
                shutil.rmtree(staging, ignore_errors=True)
                raise
            faults.check("streaming.checkpoint.renamed")
            self._point_latest(base, seq)
        registry = get_registry()
        registry.counter(
            "repro_streaming_checkpoints_total", "Stream checkpoints written."
        ).inc()
        registry.histogram(
            "repro_streaming_checkpoint_seconds",
            "Wall time to stage, rename, and point one checkpoint.",
        ).observe(time.perf_counter() - t0)
        self._checkpoint_seq = seq
        self.stats["checkpoints_written"] = stats["checkpoints_written"]
        self._absorbed_since_checkpoint = 0
        self._prune_checkpoints(base)
        return target

    @staticmethod
    def _point_latest(base: Path, seq: int) -> None:
        fd, tmp = tempfile.mkstemp(prefix=".latest-", dir=base)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(f"{seq}\n")
            os.replace(tmp, base / _CHECKPOINT_LATEST)
        except BaseException:  # pragma: no cover - replace failed
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _prune_checkpoints(self, base: Path) -> None:
        complete = sorted(
            int(path.name.split("-")[1])
            for path in base.glob("ckpt-*")
            if path.is_dir() and (path / "state.json").exists()
        )
        for seq in complete[: -self.keep_checkpoints]:
            shutil.rmtree(base / _checkpoint_name(seq), ignore_errors=True)

    @staticmethod
    def _latest_checkpoint(base: Path) -> int | None:
        def complete(seq: int) -> bool:
            return (base / _checkpoint_name(seq) / "state.json").exists()

        try:
            seq = int((base / _CHECKPOINT_LATEST).read_text().strip())
            if complete(seq):
                return seq
        except (OSError, ValueError):
            pass
        # Stale or missing pointer (e.g. a crash between rename and pointer
        # flip): fall back to the highest complete checkpoint on disk.
        candidates = sorted(
            (
                int(path.name.split("-")[1])
                for path in base.glob("ckpt-*")
                if path.is_dir() and (path / "state.json").exists()
            ),
            reverse=True,
        )
        return candidates[0] if candidates else None

    @classmethod
    def resume_from(
        cls, directory, *, config: DecompositionConfig | None = None
    ) -> "StreamingDpar2":
        """Rebuild a stream from the newest complete checkpoint in ``directory``.

        The restored stream continues bitwise-identically: compressed
        state, column count, and the RNG bit-generator state all come
        back exactly as checkpointed (``config`` overrides the saved one
        for knobs that do not affect determinism, e.g. worker counts).
        ``stats["checkpoint_resumes"]`` is incremented; it propagates to
        published model metadata and ``/healthz``.
        """
        base = Path(directory)
        seq = cls._latest_checkpoint(base)
        if seq is None:
            raise FileNotFoundError(f"no complete checkpoint under {base}")
        path = base / _checkpoint_name(seq)
        with trace.span("streaming.resume", seq=seq):
            state = json.loads((path / "state.json").read_text())
            stream = cls(
                config
                if config is not None
                else DecompositionConfig.from_dict(state["config"]),
                residual_threshold=state["residual_threshold"],
                refresh_iterations=state["refresh_iterations"],
                checkpoint_dir=base,
                checkpoint_every=state.get("checkpoint_every", 0),
                keep_checkpoints=state.get("keep_checkpoints", 2),
            )
            stream._n_columns = state["n_columns"]
            stream._rng.bit_generator.state = state["rng_state"]
            n_slices = int(state["n_slices"])
            stream._A = [np.load(path / f"A_{k:06d}.npy") for k in range(n_slices)]
            stream._G = [np.load(path / f"G_{k:06d}.npy") for k in range(n_slices)]
            if (path / "D.npy").exists():
                stream._D = np.load(path / "D.npy")
        stream._checkpoint_seq = seq
        stream.stats = dict(state.get("stats", {}))
        stream.stats["checkpoint_resumes"] = (
            stream.stats.get("checkpoint_resumes", 0) + 1
        )
        get_registry().counter(
            "repro_streaming_resumes_total",
            "Streams rebuilt from an on-disk checkpoint.",
        ).inc()
        return stream

    def result(self) -> Parafac2Result:
        """The current PARAFAC2 model (refreshing factors if needed)."""
        if self._last_result is None:
            self._refresh()
        return self._last_result

    def _refresh(self) -> None:
        compressed = self.compressed()
        # Reconstruct approximate slices only for the result container's
        # bookkeeping — iteration uses the compressed form throughout.
        tensor = IrregularTensor(
            [compressed.reconstruct_slice(k) for k in range(self.n_slices)],
            copy=False,
            dtype=self._dtype,
        )
        config = self.config.with_(
            max_iterations=max(self.refresh_iterations, 1)
        )
        self._last_result = dpar2(tensor, config, compressed=compressed)
        streaming_stats = self._last_result.stats.setdefault("streaming", {})
        streaming_stats.update(
            {
                "checkpoints_written": self.stats.get("checkpoints_written", 0),
                "checkpoint_resumes": self.stats.get("checkpoint_resumes", 0),
                "worker_restarts": self.stats.get("worker_restarts", 0),
            }
        )

    def fitness(self, tensor: IrregularTensor) -> float:
        """Fitness of the current model against externally held raw slices."""
        return self.result().fitness(tensor)

    def publish_to(self, store, *, extra: dict | None = None) -> int:
        """Publish the current model as a new registry version.

        ``store`` is a :class:`~repro.serve.store.FactorStore`.  The model
        is refreshed if needed (see :meth:`result`) and published with the
        stream's config, so a serving process polling the registry picks up
        online updates as immutable, hot-swappable snapshots — absorb new
        slices, publish, and the query layer follows without restarts.
        Returns the new version number.
        """
        meta = {
            "source": "streaming",
            "n_slices": self.n_slices,
            "checkpoint_resumes": self.stats.get("checkpoint_resumes", 0),
            "worker_restarts": self.stats.get("worker_restarts", 0),
        }
        meta.update(extra or {})
        return store.publish(self.result(), config=self.config, extra=meta)
