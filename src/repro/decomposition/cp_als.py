"""CP decomposition via alternating least squares.

Two layers:

* :func:`cp_single_iteration` — one ALS sweep over the factors of the small
  regular tensor ``Y ∈ R^{R×J×K}`` given its unfoldings; this is the inner
  step of PARAFAC2-ALS (Algorithm 2, lines 11–16).
* :func:`cp_als` — a standalone CP solver for arbitrary 3-order dense
  tensors, used by tests (sanity baseline) and by examples.

The MTTKRP ``X(n)(· ⊙ ·)`` dominates; the standalone solver materializes the
Khatri–Rao product (the "naive" cost profile the paper assigns to
PARAFAC2-ALS), while :func:`slice_mttkrp` computes the same quantities
slice-by-slice without forming ``Y`` — the SPARTan-style kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.linalg.pinv import solve_gram
from repro.tensor.dense import DenseTensor
from repro.tensor.products import hadamard, khatri_rao
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


def normalize_columns(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Scale each column to unit 2-norm; return (normalized, norms).

    Zero columns are left untouched (their reported norm is 1 so that the
    caller's rescaling is a no-op) — this happens legitimately when the data
    rank is below the target rank.
    """
    norms = np.linalg.norm(matrix, axis=0)
    safe = np.where(norms > 0, norms, 1.0)
    return matrix / safe, np.where(norms > 0, norms, 1.0)


def cp_single_iteration(
    unfoldings: tuple[np.ndarray, np.ndarray, np.ndarray],
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    *,
    normalize: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One CP-ALS sweep updating ``H`` (mode 1), ``V`` (mode 2), ``W`` (mode 3).

    ``unfoldings`` are the three matricizations of the tensor being fitted.
    When ``normalize`` is set, the columns of the updated ``H`` and ``V`` are
    rescaled to unit norm (Algorithm 3, lines 15/17); all scale then flows
    into ``W``, i.e. into the diagonal factors ``Sk``.
    """
    Y1, Y2, Y3 = unfoldings

    H = solve_gram(hadamard(W.T @ W, V.T @ V), Y1 @ khatri_rao(W, V))
    if normalize:
        H, _ = normalize_columns(H)

    V = solve_gram(hadamard(W.T @ W, H.T @ H), Y2 @ khatri_rao(W, H))
    if normalize:
        V, _ = normalize_columns(V)

    W = solve_gram(hadamard(V.T @ V, H.T @ H), Y3 @ khatri_rao(V, H))
    return H, V, W


def slice_mttkrp(
    slices: list[np.ndarray],
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    mode: int,
) -> np.ndarray:
    """MTTKRP of the stacked tensor ``Y`` computed from its frontal slices.

    ``slices[k]`` is ``Yk = Y(:, :, k)`` of shape ``(R, J)``.  Computing the
    three products slice-wise avoids materializing ``Y`` or any Khatri–Rao
    product — this is SPARTan's formulation, and it parallelizes over ``k``.

    mode 1: ``Σk Yk V diag(W[k])``        → shape ``(R, R)``
    mode 2: ``Σk Ykᵀ H diag(W[k])``       → shape ``(J, R)``
    mode 3: rows ``Σj (Ykᵀ H ∗ V)[j]``    → shape ``(K, R)``
    """
    if mode == 1:
        out = np.zeros((H.shape[0], H.shape[1]))
        for k, Yk in enumerate(slices):
            out += (Yk @ V) * W[k]
        return out
    if mode == 2:
        out = np.zeros((V.shape[0], V.shape[1]))
        for k, Yk in enumerate(slices):
            out += (Yk.T @ H) * W[k]
        return out
    if mode == 3:
        out = np.zeros((len(slices), H.shape[1]))
        for k, Yk in enumerate(slices):
            out[k] = np.sum((Yk.T @ H) * V, axis=0)
        return out
    raise ValueError(f"mode must be 1, 2, or 3, got {mode}")


@dataclass
class CpResult:
    """CP model ``X ≈ Σr λ_r a_r ∘ b_r ∘ c_r`` with fit bookkeeping."""

    factors: tuple[np.ndarray, np.ndarray, np.ndarray]
    weights: np.ndarray
    n_iterations: int = 0
    converged: bool = False
    fit_history: list[float] = field(default_factory=list)

    @property
    def rank(self) -> int:
        return self.weights.shape[0]

    def reconstruct(self) -> DenseTensor:
        return DenseTensor.from_cp_factors(self.factors, self.weights)

    def fitness(self, tensor: DenseTensor) -> float:
        """``1 − ‖X − X̂‖_F / ‖X‖_F`` (the usual CP fit)."""
        denom = tensor.norm()
        if denom == 0.0:
            return 1.0
        diff = tensor.data - self.reconstruct().data
        return 1.0 - float(np.linalg.norm(diff.ravel())) / denom


def cp_als(
    tensor: DenseTensor,
    rank: int,
    *,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    random_state=None,
) -> CpResult:
    """Fit a rank-``rank`` CP model to a regular 3-order tensor by ALS.

    Factors are initialized with i.i.d. Gaussian entries; each sweep updates
    all three factors and tracks the exact fit via the Gram-matrix identity
    ``‖X̂‖² = Σ (AᵀA ∗ BᵀB ∗ CᵀC)`` — no reconstruction is materialized
    during iteration.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    R = check_positive_int(rank, "rank")
    check_positive_int(max_iterations, "max_iterations")
    rng = as_generator(random_state)
    I1, I2, I3 = tensor.shape

    A = rng.standard_normal((I1, R))
    B = rng.standard_normal((I2, R))
    C = rng.standard_normal((I3, R))
    X1, X2, X3 = tensor.unfold(1), tensor.unfold(2), tensor.unfold(3)
    norm_sq = float(np.sum(tensor.data**2))

    monitor = ConvergenceMonitor(tolerance)
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        A = solve_gram(hadamard(C.T @ C, B.T @ B), X1 @ khatri_rao(C, B))
        A, _ = normalize_columns(A)
        B = solve_gram(hadamard(C.T @ C, A.T @ A), X2 @ khatri_rao(C, A))
        B, _ = normalize_columns(B)
        G3 = X3 @ khatri_rao(B, A)
        C = solve_gram(hadamard(B.T @ B, A.T @ A), G3)

        # Exact squared error without reconstruction:
        # <X, X̂> = Σ (C ∗ G3) because C was just solved against G3.
        inner = float(np.sum(C * G3))
        model_sq = float(np.sum((A.T @ A) * (B.T @ B) * (C.T @ C)))
        error_sq = max(norm_sq - 2.0 * inner + model_sq, 0.0)
        if monitor.update(error_sq):
            converged = True
            break

    C, lam = normalize_columns(C)
    fit_history = [
        1.0 - np.sqrt(v) / np.sqrt(norm_sq) if norm_sq > 0 else 1.0
        for v in monitor.values
    ]
    return CpResult(
        factors=(A, B, C),
        weights=lam,
        n_iterations=iteration,
        converged=converged,
        fit_history=fit_history,
    )
