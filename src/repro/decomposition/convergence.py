"""Convergence monitoring for ALS iterations.

Every solver stops "when the maximum iteration is reached, or the error
ceases to decrease" (Algorithm 2/3, line 17/23).  The *criterion* differs by
method — plain ALS and RD-ALS track the true reconstruction error, DPar2
tracks its compressed surrogate — but the stopping logic is shared: stop
when the relative change of the criterion between consecutive sweeps drops
below ``tolerance``.
"""

from __future__ import annotations

import math


class ConvergenceMonitor:
    """Tracks a scalar criterion across sweeps and decides when to stop."""

    def __init__(self, tolerance: float) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = tolerance
        self.values: list[float] = []

    def update(self, value: float) -> bool:
        """Record this sweep's criterion; return True when converged.

        Convergence means the per-sweep change ``|prev − cur|`` fell below
        ``tolerance`` times the *initial* criterion value.  Normalizing by
        the first sweep (rather than the previous one) makes the test
        well-behaved when the error decays geometrically toward zero on
        clean data — the relative-to-previous change then never shrinks even
        though the error has long stopped mattering.  NaN criteria raise
        immediately — silent divergence is a bug, not a stopping condition.
        """
        if math.isnan(value):
            raise FloatingPointError("convergence criterion became NaN")
        self.values.append(float(value))
        if len(self.values) < 2:
            return False
        prev, cur = self.values[-2], self.values[-1]
        scale = max(abs(self.values[0]), 1e-300)
        return abs(prev - cur) / scale < self.tolerance

    @property
    def last(self) -> float:
        if not self.values:
            raise RuntimeError("no criterion recorded yet")
        return self.values[-1]

    @property
    def n_updates(self) -> int:
        return len(self.values)
