"""PARAFAC2 solvers: the paper's contribution and its three competitors.

Public entry points
-------------------
* :func:`dpar2` — the paper's method (Algorithm 3).
* :func:`parafac2_als` — direct-fitting ALS baseline (Algorithm 2).
* :func:`rd_als` — Cheng & Haardt's SVD-preprocessed ALS.
* :func:`spartan` — SPARTan's slice-parallel MTTKRP ALS (dense-adapted,
  also accepts sparse slices).
* :func:`cp_als` — standalone CP decomposition of regular tensors (the
  inner kernel all PARAFAC2 solvers share).

All solvers accept a shared :class:`~repro.util.config.DecompositionConfig`
and return a :class:`~repro.decomposition.result.Parafac2Result`.
"""

from repro.decomposition.constrained import constrained_dpar2
from repro.decomposition.cp_als import CpResult, cp_als
from repro.decomposition.dpar2 import CompressedTensor, compress_tensor, dpar2
from repro.decomposition.parafac2_als import parafac2_als
from repro.decomposition.rd_als import rd_als
from repro.decomposition.registry import SOLVERS, get_solver
from repro.decomposition.result import Parafac2Result
from repro.decomposition.spartan import spartan
from repro.decomposition.streaming import StreamingDpar2

__all__ = [
    "CompressedTensor",
    "CpResult",
    "Parafac2Result",
    "SOLVERS",
    "StreamingDpar2",
    "compress_tensor",
    "constrained_dpar2",
    "cp_als",
    "dpar2",
    "get_solver",
    "parafac2_als",
    "rd_als",
    "spartan",
]
