"""RD-ALS — Cheng & Haardt's SVD-preprocessed PARAFAC2 baseline [18].

Preprocessing takes the rank-``R`` truncated SVD of the concatenation of
the transposed slices ``∥k Xkᵀ ∈ R^{J×ΣIk}`` — the paper explicitly
attributes RD-ALS's slow preprocessing to this step ("RD-ALS performs SVD
of the concatenated slice matrices", Section IV-B) — and projects every
slice onto the common right subspace: ``Gk = Xk V̂``.  ALS then runs on the
projected ``Ik×R`` slices, and the learned right factor is lifted back as
``V = V̂ Ṽ``.

Two properties the paper leans on are preserved faithfully:

* preprocessing materializes and SVDs the full-width concatenation —
  ``O(Σk Ik J²)`` with a dense-LAPACK constant — which is why DPar2's
  per-slice randomized SVDs beat it by up to 10× (Fig. 9(a));
* the convergence check evaluates the *true* reconstruction error
  ``Σk ‖Xk − Qk H Sk Vᵀ‖²`` against the raw slices every sweep —
  ``O(Σk Ik J R)`` — which is why its iterations stay well behind DPar2's
  (Fig. 9(b)) even though its CP step is compressed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.cp_als import cp_single_iteration
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.parafac2_als import update_orthogonal_factor
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.linalg.truncated_svd import truncated_svd
from repro.tensor.dense import DenseTensor
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig


def true_reconstruction_error_squared(
    tensor: IrregularTensor,
    slice_norms_sq: np.ndarray,
    Q: list[np.ndarray],
    H: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
) -> float:
    """``Σk ‖Xk − Qk H Sk Vᵀ‖²`` against the raw slices.

    The dominant cost is the projection ``Qkᵀ Xk`` — ``O(Σk Ik J R)`` — which
    is precisely the per-iteration overhead the paper attributes to RD-ALS's
    convergence criterion.
    """
    VtV = V.T @ V
    total = 0.0
    for k, Xk in enumerate(tensor):
        QtX = Q[k].T @ Xk  # the expensive O(Ik J R) step
        M_left = H * W[k]
        cross = float(np.sum((QtX @ V) * M_left))
        model_sq = float(np.sum((M_left.T @ M_left) * VtV))
        total += float(slice_norms_sq[k]) - 2.0 * cross + model_sq
    return max(total, 0.0)


def rd_als(
    tensor: IrregularTensor,
    config: DecompositionConfig | None = None,
    **overrides,
) -> Parafac2Result:
    """Fit PARAFAC2 with RD-ALS (preprocess, iterate on projected slices).

    Returns a :class:`Parafac2Result` whose ``preprocess_seconds`` covers the
    Gram-matrix SVD and the slice projections, and whose
    ``preprocessed_bytes`` counts the projected slices plus ``V̂`` — the
    quantities Fig. 9(a) and Fig. 10 report for RD-ALS.
    """
    config = (config or DecompositionConfig()).with_(**overrides)
    if not isinstance(tensor, IrregularTensor):
        tensor = IrregularTensor(tensor)
    if tensor.has_sparse_slices:
        raise ValueError(
            "rd_als does not support sparse (CSR) slices; densify with "
            "tensor.densified(), or use dpar2/spartan"
        )
    R = min(config.rank, tensor.n_columns, min(tensor.row_counts))

    # ------------------------------------------------------------------ #
    # preprocessing: common right subspace + slice projections
    # ------------------------------------------------------------------ #
    pre_start = time.perf_counter()
    # SVD of ∥k Xkᵀ (J × ΣIk), exactly the step the paper times for RD-ALS.
    concatenated = tensor.transpose_concatenation()
    V_hat = truncated_svd(concatenated, R).U  # J x R
    projected = [Xk @ V_hat for Xk in tensor]  # Ik x R each
    preprocess_seconds = time.perf_counter() - pre_start
    preprocessed_bytes = sum(Gk.nbytes for Gk in projected) + V_hat.nbytes

    # ------------------------------------------------------------------ #
    # ALS on the projected slices
    # ------------------------------------------------------------------ #
    init = initialize_factors(R, tensor.n_slices, R, config.random_state)
    H, V_tilde, W = init.H, init.V, init.W
    slice_norms_sq = np.array([float(np.sum(Xk * Xk)) for Xk in tensor])

    monitor = ConvergenceMonitor(config.tolerance)
    history: list[IterationRecord] = []
    Q: list[np.ndarray] = [None] * tensor.n_slices
    converged = False
    iteration = 0

    start = time.perf_counter()
    for iteration in range(1, config.max_iterations + 1):
        sweep_start = time.perf_counter()
        for k, Gk in enumerate(projected):
            Q[k] = update_orthogonal_factor(Gk, (V_tilde * W[k]) @ H.T)
        Y_slices = [Q[k].T @ Gk for k, Gk in enumerate(projected)]

        Y = DenseTensor.from_frontal_slices(Y_slices)
        H, V_tilde, W = cp_single_iteration(
            (Y.unfold(1), Y.unfold(2), Y.unfold(3)), H, V_tilde, W
        )

        # RD-ALS's distinguishing (expensive) convergence criterion.
        V_full = V_hat @ V_tilde
        error_sq = true_reconstruction_error_squared(
            tensor, slice_norms_sq, Q, H, V_full, W
        )
        history.append(
            IterationRecord(iteration, error_sq, time.perf_counter() - sweep_start)
        )
        if monitor.update(error_sq):
            converged = True
            break
    iterate_seconds = time.perf_counter() - start

    if Q and Q[0] is None:
        # Zero sweeps (``max_iterations=0``): factors from the initialization.
        Q = [
            update_orthogonal_factor(Gk, (V_tilde * W[k]) @ H.T)
            for k, Gk in enumerate(projected)
        ]

    return Parafac2Result(
        Q=Q,
        H=H,
        S=W,
        V=V_hat @ V_tilde,
        method="rd_als",
        n_iterations=iteration,
        converged=converged,
        preprocess_seconds=preprocess_seconds,
        iterate_seconds=iterate_seconds,
        preprocessed_bytes=preprocessed_bytes,
        history=history,
    )
