"""Coordinate (triplet) sparse matrix format."""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import as_float_data


class CooMatrix:
    """A sparse matrix stored as ``(row, col, value)`` triplets.

    Duplicate coordinates are allowed at construction and are summed when
    converting to CSR or dense — the usual COO semantics.  The value dtype
    is preserved (float32 stays float32; anything else is promoted to
    float64 at construction) and carried through every conversion.
    """

    def __init__(self, shape, rows, cols, values) -> None:
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ValueError(f"shape must be a pair of non-negative ints, got {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.rows = np.asarray(rows, dtype=np.int64).ravel()
        self.cols = np.asarray(cols, dtype=np.int64).ravel()
        self.values = as_float_data(values).ravel()
        if not (self.rows.shape == self.cols.shape == self.values.shape):
            raise ValueError(
                "rows, cols, values must have equal lengths, got "
                f"{self.rows.size}, {self.cols.size}, {self.values.size}"
            )
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
                raise ValueError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
                raise ValueError("column index out of bounds")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before duplicate summing)."""
        return self.values.size

    @property
    def dtype(self) -> np.dtype:
        """Value dtype (float32 or float64)."""
        return self.values.dtype

    def __repr__(self) -> str:
        return f"CooMatrix(shape={self.shape}, nnz={self.nnz})"

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def to_csr(self):
        """Convert to CSR, summing duplicates and dropping explicit zeros."""
        from repro.sparse.csr import CsrMatrix

        if self.nnz == 0:
            indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
            return CsrMatrix(
                self.shape,
                indptr,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=self.dtype),
            )
        order = np.lexsort((self.cols, self.rows))
        rows = self.rows[order]
        cols = self.cols[order]
        values = self.values[order]

        # Collapse duplicates: a triplet starts a new entry when its (row,
        # col) differs from its predecessor's.
        new_entry = np.ones(rows.size, dtype=bool)
        new_entry[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        # Duplicates collapse with one reduceat over the sorted runs (the
        # run starts are exactly the new-entry positions), not a scatter.
        summed = np.add.reduceat(values, np.flatnonzero(new_entry))
        unique_rows = rows[new_entry]
        unique_cols = cols[new_entry]

        keep = summed != 0.0
        unique_rows = unique_rows[keep]
        unique_cols = unique_cols[keep]
        summed = summed[keep]

        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(unique_rows, minlength=self.shape[0]), out=indptr[1:]
        )
        return CsrMatrix(self.shape, indptr, unique_cols, summed)

    @classmethod
    def from_dense(cls, dense, *, threshold: float = 0.0) -> "CooMatrix":
        """Extract entries with ``|value| > threshold`` from a dense matrix.

        The dense dtype is preserved (float32 in → float32 values).
        """
        array = as_float_data(dense)
        if array.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {array.shape}")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        mask = np.abs(array) > threshold
        rows, cols = np.nonzero(mask)
        return cls(array.shape, rows, cols, array[rows, cols])
