"""Coordinate (triplet) sparse matrix format."""

from __future__ import annotations

import numpy as np


class CooMatrix:
    """A sparse matrix stored as ``(row, col, value)`` triplets.

    Duplicate coordinates are allowed at construction and are summed when
    converting to CSR or dense — the usual COO semantics.
    """

    def __init__(self, shape, rows, cols, values) -> None:
        if len(shape) != 2 or shape[0] < 0 or shape[1] < 0:
            raise ValueError(f"shape must be a pair of non-negative ints, got {shape}")
        self.shape = (int(shape[0]), int(shape[1]))
        self.rows = np.asarray(rows, dtype=np.int64).ravel()
        self.cols = np.asarray(cols, dtype=np.int64).ravel()
        self.values = np.asarray(values, dtype=np.float64).ravel()
        if not (self.rows.shape == self.cols.shape == self.values.shape):
            raise ValueError(
                "rows, cols, values must have equal lengths, got "
                f"{self.rows.size}, {self.cols.size}, {self.values.size}"
            )
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= self.shape[0]:
                raise ValueError("row index out of bounds")
            if self.cols.min() < 0 or self.cols.max() >= self.shape[1]:
                raise ValueError("column index out of bounds")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before duplicate summing)."""
        return self.values.size

    def __repr__(self) -> str:
        return f"CooMatrix(shape={self.shape}, nnz={self.nnz})"

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        np.add.at(dense, (self.rows, self.cols), self.values)
        return dense

    def to_csr(self):
        """Convert to CSR, summing duplicates and dropping explicit zeros."""
        from repro.sparse.csr import CsrMatrix

        if self.nnz == 0:
            indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
            return CsrMatrix(
                self.shape,
                indptr,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        order = np.lexsort((self.cols, self.rows))
        rows = self.rows[order]
        cols = self.cols[order]
        values = self.values[order]

        # Collapse duplicates: a triplet starts a new entry when its (row,
        # col) differs from its predecessor's.
        new_entry = np.ones(rows.size, dtype=bool)
        new_entry[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        group = np.cumsum(new_entry) - 1
        summed = np.zeros(group[-1] + 1)
        np.add.at(summed, group, values)
        unique_rows = rows[new_entry]
        unique_cols = cols[new_entry]

        keep = summed != 0.0
        unique_rows = unique_rows[keep]
        unique_cols = unique_cols[keep]
        summed = summed[keep]

        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, unique_rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CsrMatrix(self.shape, indptr, unique_cols, summed)

    @classmethod
    def from_dense(cls, dense, *, threshold: float = 0.0) -> "CooMatrix":
        """Extract entries with ``|value| > threshold`` from a dense matrix."""
        array = np.asarray(dense, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {array.shape}")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        mask = np.abs(array) > threshold
        rows, cols = np.nonzero(mask)
        return cls(array.shape, rows, cols, array[rows, cols])
