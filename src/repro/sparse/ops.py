"""Sparse helpers shared by SPARTan and the data generators."""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.util.rng import as_generator


def dense_to_sparse(dense, *, threshold: float = 0.0) -> CsrMatrix:
    """Convert a dense matrix to CSR, keeping ``|value| > threshold``."""
    return CooMatrix.from_dense(dense, threshold=threshold).to_csr()


def sparsity(matrix) -> float:
    """Fraction of zero entries, for dense arrays or CSR matrices."""
    if isinstance(matrix, CsrMatrix):
        return 1.0 - matrix.density
    array = np.asarray(matrix)
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array == 0.0)) / array.size


def random_sparse(
    shape,
    density: float,
    random_state=None,
) -> CsrMatrix:
    """Random CSR matrix with roughly ``density`` nonzero fraction."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rows, cols = int(shape[0]), int(shape[1])
    rng = as_generator(random_state)
    nnz = int(round(density * rows * cols))
    if nnz == 0:
        return CooMatrix((rows, cols), [], [], []).to_csr()
    flat = rng.choice(rows * cols, size=nnz, replace=False)
    return CooMatrix(
        (rows, cols),
        flat // cols,
        flat % cols,
        rng.standard_normal(nnz),
    ).to_csr()
