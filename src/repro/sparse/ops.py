"""Sparse helpers shared by SPARTan, DPar2's fast path, and the generators."""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.util.rng import as_generator


def dense_to_sparse(dense, *, threshold: float = 0.0) -> CsrMatrix:
    """Convert a dense matrix to CSR, keeping ``|value| > threshold``.

    The dense dtype is preserved (float32 in → float32 CSR values).
    """
    return CooMatrix.from_dense(dense, threshold=threshold).to_csr()


def check_finite_csr(matrix: CsrMatrix, name: str = "matrix") -> CsrMatrix:
    """Reject CSR matrices with NaN/Inf values — the sparse counterpart of
    :func:`repro.util.validation.check_matrix`'s finiteness check."""
    if matrix.nnz and not np.all(np.isfinite(matrix.data)):
        raise ValueError(f"{name} contains NaN or Inf entries")
    return matrix


def slice_squared_norm(matrix) -> float:
    """``‖Xk‖_F²`` for a dense array or CSR slice, accumulated in float64."""
    if isinstance(matrix, CsrMatrix):
        return matrix.squared_norm()
    array = np.asarray(matrix)
    return float(np.sum(array * array, dtype=np.float64))


def sparsity(matrix) -> float:
    """Fraction of zero entries, for dense arrays or CSR matrices."""
    if isinstance(matrix, CsrMatrix):
        return 1.0 - matrix.density
    array = np.asarray(matrix)
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array == 0.0)) / array.size


def random_sparse(
    shape,
    density: float,
    random_state=None,
    *,
    dtype=np.float64,
) -> CsrMatrix:
    """Random CSR matrix with roughly ``density`` nonzero fraction.

    Values are standard normal, drawn in float64 and cast to ``dtype`` —
    so a float32 matrix sees the same value stream as its float64 twin.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    dtype = np.dtype(dtype)
    rows, cols = int(shape[0]), int(shape[1])
    rng = as_generator(random_state)
    nnz = int(round(density * rows * cols))
    if nnz == 0:
        return CooMatrix((rows, cols), [], [], np.empty(0, dtype=dtype)).to_csr()
    flat = rng.choice(rows * cols, size=nnz, replace=False)
    values = rng.standard_normal(nnz)
    return CooMatrix(
        (rows, cols),
        flat // cols,
        flat % cols,
        values if dtype == np.float64 else values.astype(dtype),
    ).to_csr()
