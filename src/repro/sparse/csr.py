"""Compressed Sparse Row matrix with the kernels SPARTan needs."""

from __future__ import annotations

import numpy as np


class CsrMatrix:
    """CSR matrix: ``indptr`` (len rows+1), ``indices``, ``data``.

    Rows are contiguous runs ``data[indptr[i]:indptr[i+1]]`` with column
    indices ``indices[...]``.  Within a row, columns are sorted and unique
    (guaranteed when built via :meth:`CooMatrix.to_csr`).
    """

    def __init__(self, shape, indptr, indices, data) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if self.indptr.shape != (self.shape[0] + 1,):
            raise ValueError(
                f"indptr must have length rows+1 = {self.shape[0] + 1}, "
                f"got {self.indptr.shape[0]}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have equal lengths")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of bounds")

    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def __repr__(self) -> str:
        return f"CsrMatrix(shape={self.shape}, nnz={self.nnz})"

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #

    def matvec(self, vector) -> np.ndarray:
        """``A @ x`` for a dense vector ``x``."""
        x = np.asarray(vector, dtype=np.float64).ravel()
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"vector has length {x.shape[0]}, expected {self.shape[1]}"
            )
        products = self.data * x[self.indices]
        out = np.zeros(self.shape[0])
        row_ids = self._row_ids()
        np.add.at(out, row_ids, products)
        return out

    def matmul_dense(self, dense) -> np.ndarray:
        """``A @ B`` for a dense matrix ``B`` (the SPARTan workhorse)."""
        B = np.asarray(dense, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.shape[1]:
            raise ValueError(
                f"dense operand must be ({self.shape[1]}, n), got {B.shape}"
            )
        out = np.zeros((self.shape[0], B.shape[1]))
        row_ids = self._row_ids()
        contrib = self.data[:, None] * B[self.indices]
        np.add.at(out, row_ids, contrib)
        return out

    def rmatmul_dense(self, dense) -> np.ndarray:
        """``Bᵀ @ A`` i.e. ``(Aᵀ B)ᵀ`` — computes ``dense.T @ self``."""
        B = np.asarray(dense, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.shape[0]:
            raise ValueError(
                f"dense operand must be ({self.shape[0]}, n), got {B.shape}"
            )
        out = np.zeros((B.shape[1], self.shape[1]))
        row_ids = self._row_ids()
        # out[:, j] += sum over nnz with col j of value * B[row, :]
        contrib = self.data[:, None] * B[row_ids]
        np.add.at(out.T, self.indices, contrib)
        return out

    def transpose(self) -> "CsrMatrix":
        """Return ``Aᵀ`` as a new CSR matrix."""
        from repro.sparse.coo import CooMatrix

        row_ids = self._row_ids()
        return CooMatrix(
            (self.shape[1], self.shape[0]), self.indices, row_ids, self.data
        ).to_csr()

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        row_ids = self._row_ids()
        dense[row_ids, self.indices] = self.data
        return dense

    def row_norms_squared(self) -> np.ndarray:
        """Per-row squared 2-norms (used for norm bookkeeping)."""
        out = np.zeros(self.shape[0])
        np.add.at(out, self._row_ids(), self.data**2)
        return out

    def squared_norm(self) -> float:
        return float(np.sum(self.data**2))

    def _row_ids(self) -> np.ndarray:
        """Expand ``indptr`` into a per-entry row-index array."""
        return np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
