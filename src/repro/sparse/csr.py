"""Compressed Sparse Row matrix with the kernels SPARTan and DPar2 need.

The kernels here are the substrate of the sparse-slice fast path: stage-1
compression sketches ``Y = Xk Ω`` through :meth:`CsrMatrix.matmul_dense`
(and its transpose through :meth:`CsrMatrix.t_matmul_dense`), so they must
be dispatch-light and allocation-tight.  Two design rules follow:

* **No per-entry scatter.**  Per-row reductions run through
  :func:`row_segment_sum` — one ``np.add.reduceat`` over the contiguous
  CSR row segments — instead of ``np.add.at``, whose unbuffered per-index
  scatter is an order of magnitude slower.
* **Dtype preservation.**  ``data`` keeps its float32/float64 input dtype
  (anything else is promoted to float64 once, at construction) and every
  kernel allocates its output in the matrix dtype — promoted only when a
  dense operand carries higher precision (``np.result_type`` semantics, the
  same rule dense ``@`` follows) — so the float32 pipeline never silently
  upcasts.
"""

from __future__ import annotations

import numpy as np

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def as_float_data(values) -> np.ndarray:
    """Canonicalize a value array: float32/float64 kept, the rest promoted.

    Uses ``asanyarray`` so a satisfying input passes through untouched —
    in particular an ``np.memmap`` stays an ``np.memmap``, which is what
    lets the out-of-core checks recognise store-backed CSR slices.
    """
    data = np.asanyarray(values)
    if data.dtype not in _FLOAT_DTYPES:
        data = data.astype(np.float64)
    return data


def row_segment_sum(contrib: np.ndarray, indptr: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Reduce per-entry contributions into per-row totals, segment-wise.

    ``contrib`` holds one row per stored entry in CSR order; ``indptr`` is
    the row pointer; ``out`` must be zero-initialized (empty rows are left
    untouched).  Non-empty rows reduce with a single ``np.add.reduceat``
    over the segment starts: entries between two consecutive non-empty row
    starts belong exactly to the earlier row, because empty rows contribute
    no entries — so dropping them from the index list is what makes
    ``reduceat``'s "sum to the next index" semantics line up with CSR rows.
    """
    nonempty = np.flatnonzero(np.diff(indptr))
    if nonempty.size:
        out[nonempty] = np.add.reduceat(contrib, indptr[nonempty], axis=0)
    return out


class CsrMatrix:
    """CSR matrix: ``indptr`` (len rows+1), ``indices``, ``data``.

    Rows are contiguous runs ``data[indptr[i]:indptr[i+1]]`` with column
    indices ``indices[...]``.  Within a row, columns are sorted and unique
    (guaranteed when built via :meth:`CooMatrix.to_csr`).  Instances are
    immutable by convention — kernels never modify the stored arrays, and
    :meth:`transpose` caches its result under that assumption.

    ``validate=False`` skips the structural checks; it is reserved for
    construction paths that already guarantee them (e.g. reopening a
    memory-mapped store, where validation would page in every index).
    """

    #: Binary numpy ops defer to our ``__rmatmul__`` instead of coercing
    #: the matrix into an object array.
    __array_ufunc__ = None

    def __init__(self, shape, indptr, indices, data, *, validate: bool = True) -> None:
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = as_float_data(data)
        self._transpose_cache: "CsrMatrix | None" = None
        # Backend-native CSR handles, keyed by module name (see native()).
        self._native: dict = {}
        if not validate:
            return
        if self.indptr.shape != (self.shape[0] + 1,):
            raise ValueError(
                f"indptr must have length rows+1 = {self.shape[0] + 1}, "
                f"got {self.indptr.shape[0]}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must have equal lengths")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.shape[1]
        ):
            raise ValueError("column index out of bounds")

    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        """Value dtype (float32 or float64) — preserved by every kernel."""
        return self.data.dtype

    @property
    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Bytes held by the compressed arrays (data + indices + indptr)."""
        return self.data.nbytes + self.indices.nbytes + self.indptr.nbytes

    def __repr__(self) -> str:
        return (
            f"CsrMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"dtype={self.dtype.name})"
        )

    def native(self, xp):
        """This matrix as ``xp``'s CSR handle, uploaded once per backend.

        Built through :meth:`ArrayModule.sparse_csr
        <repro.linalg.array_module.ArrayModule.sparse_csr>` and cached by
        module name, so repeated sketches of the same slice (rank sweeps,
        fold-in re-projections) pay the host→device transfer once.
        """
        handle = self._native.get(xp.name)
        if handle is None:
            handle = self._native[xp.name] = xp.sparse_csr(
                self.indptr, self.indices, self.data, self.shape
            )
        return handle

    def has_native(self, xp) -> bool:
        """Whether :meth:`native` already holds ``xp``'s handle (no upload)."""
        return xp.name in self._native

    def astype(self, dtype) -> "CsrMatrix":
        """This matrix with values cast to ``dtype`` (self when it matches).

        The index structure is shared, not copied — instances are immutable
        by convention.
        """
        dtype = np.dtype(dtype)
        if dtype == self.dtype:
            return self
        return CsrMatrix(
            self.shape,
            self.indptr,
            self.indices,
            self.data.astype(dtype),
            validate=False,
        )

    def scaled(self, factor: float) -> "CsrMatrix":
        """``factor * A`` — shares the index structure, scales the values."""
        return CsrMatrix(
            self.shape,
            self.indptr,
            self.indices,
            self.data * self.dtype.type(factor),
            validate=False,
        )

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #

    def matvec(self, vector) -> np.ndarray:
        """``A @ x`` for a dense vector ``x``."""
        x = np.asarray(vector).ravel()
        if x.shape[0] != self.shape[1]:
            raise ValueError(
                f"vector has length {x.shape[0]}, expected {self.shape[1]}"
            )
        products = self.data * x[self.indices]
        out = np.zeros(self.shape[0], dtype=np.result_type(self.data, x))
        return row_segment_sum(products, self.indptr, out)

    def matmul_dense(self, dense) -> np.ndarray:
        """``A @ B`` for a dense matrix ``B`` (the SpMM workhorse)."""
        B = np.asarray(dense)
        if B.ndim != 2 or B.shape[0] != self.shape[1]:
            raise ValueError(
                f"dense operand must be ({self.shape[1]}, n), got {B.shape}"
            )
        contrib = self.data[:, None] * B[self.indices]
        out = np.zeros(
            (self.shape[0], B.shape[1]), dtype=np.result_type(self.data, B)
        )
        return row_segment_sum(contrib, self.indptr, out)

    def t_matmul_dense(self, dense) -> np.ndarray:
        """``Aᵀ @ B`` — SpMM through the CSC view (no scatter).

        Uses a cached transpose when one exists (a prior :meth:`transpose`
        call) but never creates one: a one-shot product must not pin an
        in-RAM copy of the matrix for its lifetime — for memory-mapped
        slices that would silently defeat out-of-core streaming.  The
        ephemeral build is ``O(nnz)``, small next to the product itself.
        """
        return (self._transpose_cache or self._build_transpose()).matmul_dense(
            dense
        )

    def rmatmul_dense(self, dense) -> np.ndarray:
        """``Bᵀ @ A`` i.e. ``(Aᵀ B)ᵀ`` — computes ``dense.T @ self``."""
        B = np.asarray(dense)
        if B.ndim != 2 or B.shape[0] != self.shape[0]:
            raise ValueError(
                f"dense operand must be ({self.shape[0]}, n), got {B.shape}"
            )
        return (self._transpose_cache or self._build_transpose()).matmul_dense(B).T

    def _build_transpose(self) -> "CsrMatrix":
        """The CSC form as a fresh CSR matrix — no caching here.

        Built with a counting sort on the column keys: ``np.argsort(...,
        kind="stable")`` is numpy's radix sort on integer keys, so the
        build is ``O(nnz)`` — no COO round-trip, no duplicate collapsing
        (the input is already canonical).  Stability keeps rows ascending
        within each transposed row, preserving the CSR invariant.
        """
        rows, cols = self.shape
        order = np.argsort(self.indices, kind="stable")
        counts = np.bincount(self.indices, minlength=cols)
        indptr_t = np.zeros(cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr_t[1:])
        return CsrMatrix(
            (cols, rows),
            indptr_t,
            self._row_ids()[order],
            self.data[order],
            validate=False,
        )

    def transpose(self) -> "CsrMatrix":
        """``Aᵀ`` as a CSR matrix (equivalently: this matrix's CSC form).

        The result is cached and back-linked (``A.T.T is A``) — instances
        are immutable by convention, which is what makes the cache sound.
        The cache holds an in-RAM copy of the whole matrix, so repeated
        transposed products through it are cheap; callers that must not
        grow resident memory (one-shot products on out-of-core slices)
        should use :meth:`t_matmul_dense` / :meth:`rmatmul_dense`, which
        only read this cache and never create it.
        """
        if self._transpose_cache is None:
            transposed = self._build_transpose()
            transposed._transpose_cache = self
            self._transpose_cache = transposed
        return self._transpose_cache

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self.dtype)
        dense[self._row_ids(), self.indices] = self.data
        return dense

    def row_norms_squared(self) -> np.ndarray:
        """Per-row squared 2-norms (used for norm bookkeeping)."""
        out = np.zeros(self.shape[0], dtype=self.dtype)
        return row_segment_sum(self.data * self.data, self.indptr, out)

    def squared_norm(self) -> float:
        """``‖A‖_F²``, accumulated in float64 whatever the value dtype."""
        return float(np.sum(self.data * self.data, dtype=np.float64))

    def _row_ids(self) -> np.ndarray:
        """Expand ``indptr`` into a per-entry row-index array."""
        return np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )

    # ------------------------------------------------------------------ #
    # operator sugar
    # ------------------------------------------------------------------ #

    def __matmul__(self, other):
        other = np.asarray(other)
        if other.ndim == 1:
            return self.matvec(other)
        return self.matmul_dense(other)

    def __rmatmul__(self, other):
        other = np.asarray(other)
        if other.ndim == 1:
            # x @ A = (Aᵀ x)ᵀ for a vector: a length-cols vector.
            return self.t_matmul_dense(other[:, None]).ravel()
        return self.t_matmul_dense(other.T).T
