"""Minimal sparse-matrix substrate, built from scratch.

SPARTan [11] is natively a *sparse* PARAFAC2 method; to implement it
faithfully (and to support sparse irregular tensors as inputs) the library
carries its own COO/CSR formats rather than depending on scipy:

* :class:`CooMatrix` — construction-friendly triplet format.
* :class:`CsrMatrix` — row-compressed format with matvec / matmat kernels.
* :func:`ops.sparse_dense_matmul` and friends — the kernels SPARTan's
  MTTKRP needs.
"""

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import dense_to_sparse, sparsity

__all__ = ["CooMatrix", "CsrMatrix", "dense_to_sparse", "sparsity"]
