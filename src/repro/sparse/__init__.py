"""Minimal sparse-matrix substrate, built from scratch.

SPARTan [11] is natively a *sparse* PARAFAC2 method, and DPar2's stage-1
compression has a sparse fast path (CSR-aware randomized sketching); to
support both (and sparse irregular tensors as inputs) the library carries
its own formats rather than depending on scipy:

* :class:`CooMatrix` — construction-friendly triplet format.
* :class:`CsrMatrix` — row-compressed format with scatter-free
  (``reduceat``-based), dtype-preserving matvec / matmat kernels.
* :class:`StackedCsr` — a row-count bucket of CSR slices concatenated so
  the batched stage-1 sketch runs the whole bucket's SpMM in one call.
* :mod:`ops` — conversion, norm, and random-generation helpers.
"""

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import (
    check_finite_csr,
    dense_to_sparse,
    slice_squared_norm,
    sparsity,
)
from repro.sparse.stacked import StackedCsr, spmm_backend

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "StackedCsr",
    "check_finite_csr",
    "dense_to_sparse",
    "slice_squared_norm",
    "sparsity",
    "spmm_backend",
]
