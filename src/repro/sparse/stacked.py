"""``StackedCsr`` — a bucket of equal-shape CSR slices as one flat structure.

DPar2's batched stage-1 path stacks equal-row-count slice buckets so the
whole randomized-SVD pipeline runs as a handful of 3-D LAPACK calls
(:func:`repro.linalg.kernels.batched_randomized_svd`).  The sparse fast
path needs the same property for its SpMM steps: sketching a bucket slice
by slice would reintroduce exactly the per-slice Python dispatch the
batching removed.  ``StackedCsr`` therefore concatenates a bucket's CSR
arrays — one flat ``data``/``indices`` pair plus a stacked row pointer of
length ``b·m + 1`` — so that

* ``matmul_dense`` computes every ``Xk @ Bk`` of the bucket in one call:
  the concatenated structure is exactly a block-diagonal CSR of shape
  ``(b·m, b·J)``, so when scipy is importable the whole bucket goes
  through one compiled SpMM (no ``nnz×s`` temporary at all).  The
  numpy-only fallback groups rows by their nonzero count once per bucket,
  making each group a regular ``(rows, p)`` × ``(rows, p, s)``
  contraction with **no** per-row reduction overhead
  (``np.add.reduceat`` pays a per-segment setup cost that dominates at
  the 2–20 nonzeros per row these tensors actually have).
* ``t_matmul_dense`` does the same for ``Xkᵀ @ Bk`` through a cached
  stacked transpose (one radix counting sort over all slices at once).

Slices shorter than the bucket height are padded with empty rows — for
CSR that is literally free (repeated row-pointer entries), unlike the
dense path's zero-filled copies.

Both products also run on a non-numpy compute backend: pass an
:class:`~repro.linalg.array_module.ArrayModule` as ``xp`` and the
block-diagonal structure is uploaded once per backend (cached via
:meth:`StackedCsr.native`), the product runs through the module's
``spmm`` kernel, and operands/results stay backend-native so a whole
sketch pipeline never round-trips through the host.  The default host
path is untouched — same kernels, same bits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sparse.csr import CsrMatrix

try:  # soft accelerator — everything below also runs scipy-free
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _scipy_sparse = None

__all__ = ["StackedCsr", "spmm_backend"]


def spmm_backend() -> str:
    """Which kernel :class:`StackedCsr` products run on: ``scipy`` or ``numpy``.

    The library's sparse formats are self-contained, but the batched SpMM
    inner loop is the one place a compiled kernel is worth borrowing: when
    scipy is importable the stacked structure is handed to
    ``scipy.sparse``'s C routine (one call per product, no ``nnz×s``
    expansion through memory); otherwise the pure-numpy grouped-gather
    contraction below runs.  Identical math either way — entries sum in
    CSR order — so the choice is invisible except in speed.
    """
    return "numpy" if _scipy_sparse is None else "scipy"


def _row_groups(
    indptr: np.ndarray, flat_cols: np.ndarray, data: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Group rows by nonzero count: ``[(row_ids, values, operand_rows), ...]``.

    Every row of a group has exactly ``p`` stored entries, so its values
    and operand-row indices regroup into regular ``(len(row_ids), p)``
    blocks — ``values`` and ``operand_rows`` here are those blocks,
    pre-gathered once (they depend only on the matrix, not the operand),
    leaving each product with a single dense gather and one einsum
    contraction per group.  Empty rows are dropped (their output stays
    zero).
    """
    counts = np.diff(indptr)
    order = np.argsort(counts, kind="stable")
    sorted_counts = counts[order]
    groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    boundaries = np.searchsorted(sorted_counts, np.unique(sorted_counts))
    boundaries = list(boundaries) + [sorted_counts.size]
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        p = int(sorted_counts[lo])
        if p == 0:
            continue
        rows = order[lo:hi]
        entries = (indptr[rows][:, None] + np.arange(p, dtype=np.int64)).ravel()
        groups.append(
            (
                rows,
                data[entries].reshape(-1, p),
                flat_cols[entries].reshape(-1, p),
            )
        )
    return groups


class StackedCsr:
    """``b`` CSR matrices of common shape ``(m, J)``, concatenated.

    Slice ``p`` owns global rows ``p·m … (p+1)·m − 1`` of the flat CSR
    structure.  ``_flat_cols`` maps each stored entry to its row in the
    ``(b·J, s)`` flattening of a ``(b, J, s)`` dense operand — the index
    array that turns the whole bucket's SpMM into one gather.  Instances
    are immutable by convention; :meth:`transpose` caches its result.
    """

    def __init__(self, n_stack, shape, indptr, indices, data) -> None:
        self.n_stack = int(n_stack)
        self.shape = (int(shape[0]), int(shape[1]))
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        if self.indptr.shape != (self.n_stack * self.shape[0] + 1,):
            raise ValueError(
                f"indptr must have length b*m+1 = "
                f"{self.n_stack * self.shape[0] + 1}, got {self.indptr.shape[0]}"
            )
        self._transpose_cache: "StackedCsr | None" = None
        # Entry p*J + column for every stored value: rows of the flattened
        # (b*J, s) dense operand.  nnz-sized, built once per bucket.
        slice_ids = self.slice_ids()
        self._flat_cols = slice_ids * self.shape[1] + self.indices
        if _scipy_sparse is not None:
            # The stacked structure *is* a block-diagonal CSR of shape
            # (b·m, b·J): slice p's rows only reference operand rows in
            # its own J-block, which is what _flat_cols encodes.  One C
            # SpMM then multiplies the whole bucket.
            self._scipy = _scipy_sparse.csr_matrix(
                (self.data, self._flat_cols, self.indptr),
                shape=(self.n_stack * self.shape[0], self.n_stack * self.shape[1]),
            )
            self._groups = None
        else:
            self._scipy = None
            # Rows grouped by nonzero count — the contraction schedule
            # every product reuses (matrix-only, so caching is sound).
            self._groups = _row_groups(self.indptr, self._flat_cols, self.data)
        # Gather/accumulate scratch for the numpy path, keyed by (operand
        # width, dtype) and reused across products: stage 1 calls the
        # kernels four times per bucket at one width, and a fresh ~nnz·s
        # temporary per call costs more in page faults than the arithmetic
        # it feeds.
        self._scratch: dict = {}
        # Backend-native handles, keyed by module name (see native()).
        self._native: dict = {}

    @classmethod
    def from_matrices(
        cls, matrices: Sequence[CsrMatrix], *, height: int | None = None
    ) -> "StackedCsr":
        """Stack a bucket of CSR slices, padding each to ``height`` rows.

        All slices must share the column count and have at most ``height``
        rows (default: the tallest).  Values are promoted to the bucket's
        common dtype (float64 wins over float32, matching what stacking
        dense slices would do).  Padding rows are empty — the stacked row
        pointer simply repeats, no values are stored.
        """
        if not matrices:
            raise ValueError("cannot stack an empty bucket")
        J = matrices[0].shape[1]
        for pos, Xk in enumerate(matrices):
            if Xk.shape[1] != J:
                raise ValueError(
                    f"matrices[{pos}] has {Xk.shape[1]} columns, expected {J}"
                )
        if height is None:
            height = max(Xk.shape[0] for Xk in matrices)
        if any(Xk.shape[0] > height for Xk in matrices):
            raise ValueError(f"every slice must have at most {height} rows")
        dtype = np.result_type(*[Xk.data.dtype for Xk in matrices])

        indptr = np.empty(len(matrices) * height + 1, dtype=np.int64)
        indptr[0] = 0
        offset = 0
        for pos, Xk in enumerate(matrices):
            base = pos * height
            indptr[base + 1 : base + 1 + Xk.shape[0]] = offset + Xk.indptr[1:]
            # Padding rows (if any) are empty: repeat the running offset.
            offset += Xk.nnz
            indptr[base + 1 + Xk.shape[0] : base + 1 + height] = offset
        indices = np.concatenate([Xk.indices for Xk in matrices])
        data = np.concatenate(
            [Xk.data.astype(dtype, copy=False) for Xk in matrices]
        )
        return cls(len(matrices), (height, J), indptr, indices, data)

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #

    @property
    def nnz(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return (
            self.data.nbytes
            + self.indices.nbytes
            + self.indptr.nbytes
            + self._flat_cols.nbytes
        )

    def __repr__(self) -> str:
        return (
            f"StackedCsr(b={self.n_stack}, shape={self.shape}, "
            f"nnz={self.nnz}, dtype={self.dtype.name})"
        )

    def slice_ids(self) -> np.ndarray:
        """Per-entry slice index (length nnz)."""
        per_row = np.diff(self.indptr)
        rows_per_slice = per_row.reshape(self.n_stack, self.shape[0]).sum(axis=1)
        return np.repeat(
            np.arange(self.n_stack, dtype=np.int64), rows_per_slice
        )

    # ------------------------------------------------------------------ #
    # batched kernels
    # ------------------------------------------------------------------ #

    def native(self, xp):
        """This bucket as ``xp``'s CSR handle, uploaded once per backend.

        The handle is the block-diagonal ``(b·m, b·J)`` flattening — the
        same structure the scipy host kernel multiplies — built through
        :meth:`ArrayModule.sparse_csr
        <repro.linalg.array_module.ArrayModule.sparse_csr>` and cached by
        module name for the life of the bucket.
        """
        handle = self._native.get(xp.name)
        if handle is None:
            handle = self._native[xp.name] = xp.sparse_csr(
                self.indptr,
                self._flat_cols,
                self.data,
                (self.n_stack * self.shape[0], self.n_stack * self.shape[1]),
            )
        return handle

    def matmul_dense(self, dense, *, xp=None) -> np.ndarray:
        """``[Xk @ Bk]`` stacked: ``(b, J, s)`` in, ``(b, m, s)`` out.

        With scipy present (see :func:`spmm_backend`) this is one C-level
        SpMM over the block-diagonal stacked structure.  The numpy
        fallback runs per nonzero-count group: one gather over the
        flattened operand and one ``(rows, p) × (rows, p, s)`` einsum
        contraction — the whole bucket's SpMM in a handful of regular
        vectorized calls, with no per-slice Python dispatch, no per-entry
        scatter, and no per-row reduction overhead.  Either way entries
        sum in CSR (column) order within each row, exactly like a
        sequential dot product.

        With a non-numpy ``xp`` the operand must be (or is moved)
        ``xp``-native, the product runs as one ``xp.spmm`` over the cached
        :meth:`native` handle, and the result stays backend-native — the
        caller owns the eventual download.
        """
        if xp is not None and not xp.is_numpy:
            b, m, J = self.n_stack, self.shape[0], self.shape[1]
            B = xp.asarray(dense)
            flat = xp.reshape(B, (b * J, B.shape[2]))
            return xp.reshape(
                xp.spmm(self.native(xp), flat), (b, m, B.shape[2])
            )
        B = np.asarray(dense)
        b, m, J = self.n_stack, self.shape[0], self.shape[1]
        if B.ndim != 3 or B.shape[0] != b or B.shape[1] != J:
            raise ValueError(
                f"dense operand must be ({b}, {J}, s), got {B.shape}"
            )
        s = B.shape[2]
        flat = np.ascontiguousarray(B).reshape(b * J, s)
        if self._scipy is not None:
            return np.ascontiguousarray(self._scipy @ flat).reshape(b, m, s)
        out_dtype = np.result_type(self.data, B)
        out = np.zeros((b * m, s), dtype=out_dtype)
        # The gather buffer matches the operand dtype (np.take does not
        # cast); einsum promotes mixed operands like a dense product would.
        key = (s, flat.dtype.str)
        scratch = self._scratch.get(key)
        if scratch is None:
            scratch = self._scratch[key] = np.empty(self.nnz * s, dtype=flat.dtype)
        for rows, values, operand_rows in self._groups:
            r, p = values.shape
            gathered = scratch[: r * p * s].reshape(r, p, s)
            np.take(flat, operand_rows, axis=0, out=gathered)
            out[rows] = np.einsum("rp,rps->rs", values, gathered)
        return out.reshape(b, m, s)

    def t_matmul_dense(self, dense, *, xp=None) -> np.ndarray:
        """``[Xkᵀ @ Bk]`` stacked: ``(b, m, s)`` in, ``(b, J, s)`` out.

        On the scipy kernel this is the zero-copy CSC view of the stacked
        structure (``.T`` shares the data arrays) — no transpose build at
        all, and the C loop still accumulates each output row in ascending
        original-row order, matching the numpy fallback's summation order.
        The fallback multiplies through the cached stacked transpose.

        A non-numpy ``xp`` also multiplies through :meth:`transpose` — the
        counting sort runs on the host once, its CSR handle uploads once,
        and every backend then runs the same forward ``spmm`` kernel (CSC
        support is uneven across device libraries; a cached explicit
        transpose is both portable and free after the first product).
        """
        if xp is not None and not xp.is_numpy:
            return self.transpose().matmul_dense(dense, xp=xp)
        if self._scipy is not None:
            B = np.asarray(dense)
            b, m, J = self.n_stack, self.shape[0], self.shape[1]
            if B.ndim != 3 or B.shape[0] != b or B.shape[1] != m:
                raise ValueError(
                    f"dense operand must be ({b}, {m}, s), got {B.shape}"
                )
            flat = np.ascontiguousarray(B).reshape(b * m, B.shape[2])
            return np.ascontiguousarray(self._scipy.T @ flat).reshape(
                b, J, B.shape[2]
            )
        return self.transpose().matmul_dense(dense)

    def transpose(self) -> "StackedCsr":
        """Every slice transposed, as a ``(b, J, m)`` stacked CSR.

        One global counting sort: the stable integer argsort (numpy's radix
        sort) on the per-entry ``slice·J + column`` key groups entries by
        (slice, column) while preserving row order within each group — the
        CSC of every slice in a single ``O(nnz)`` pass.  Cached and
        back-linked, like :meth:`CsrMatrix.transpose`.
        """
        if self._transpose_cache is None:
            b, m, J = self.n_stack, self.shape[0], self.shape[1]
            order = np.argsort(self._flat_cols, kind="stable")
            counts = np.bincount(self._flat_cols, minlength=b * J)
            indptr_t = np.zeros(b * J + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr_t[1:])
            local_rows = (
                np.repeat(np.arange(b * m, dtype=np.int64), np.diff(self.indptr))
                % m
            )
            transposed = StackedCsr(
                b, (J, m), indptr_t, local_rows[order], self.data[order]
            )
            transposed._transpose_cache = self
            self._transpose_cache = transposed
        return self._transpose_cache
